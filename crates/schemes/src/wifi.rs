//! The WiFi RSSI fingerprinting scheme (RADAR [1]).
//!
//! "We calculate the Euclidean distances between an online measured RSSI
//! vector and all offline fingerprints, and find the location with the
//! shortest RSSI distance." Heterogeneous devices first map their readings
//! into the reference device's RSSI space via an online-learned offset
//! ([`RssiCalibration`]).

use crate::estimate::{LocalizationScheme, LocationEstimate, SchemeId};
use crate::fingerprint::WifiFingerprintDb;
use uniloc_sensors::{RssiCalibration, SensorFrame, WifiScan};

/// Number of top candidates retained for the spread statistic and the
/// error-model feature (the paper sets `k = 3`).
pub const TOP_K: usize = 3;

/// The RADAR-style WiFi fingerprinting scheme.
///
/// # Examples
///
/// ```no_run
/// use uniloc_env::campus;
/// use uniloc_schemes::{WifiFingerprintDb, WifiFingerprintScheme, LocalizationScheme};
/// use uniloc_sensors::{DeviceProfile, SensorHub};
///
/// let scenario = campus::daily_path(1);
/// let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 2);
/// let points = scenario.survey_points(3.0, 12.0);
/// let db = WifiFingerprintDb::survey_wifi(&mut hub, &points);
/// let scheme = WifiFingerprintScheme::new(db);
/// ```
#[derive(Debug, Clone)]
pub struct WifiFingerprintScheme {
    db: WifiFingerprintDb,
    calibration: RssiCalibration,
    /// Minimum audible APs for a meaningful result ("when the number of
    /// audible APs is less than 3, it is unlikely [...] to provide a
    /// meaningful result").
    min_aps: usize,
    /// Top-k candidates of the latest match, for [`LocalizationScheme::posterior`].
    last_matches: Vec<crate::fingerprint::FingerprintMatch>,
    /// Calibrated-scan scratch, recycled across epochs so steady-state
    /// updates perform no heap allocation.
    calibrated_buf: WifiScan,
}

impl WifiFingerprintScheme {
    /// Creates the scheme over an offline fingerprint database.
    pub fn new(db: WifiFingerprintDb) -> Self {
        WifiFingerprintScheme {
            db,
            calibration: RssiCalibration::identity(),
            min_aps: 1,
            last_matches: Vec::new(),
            calibrated_buf: WifiScan { readings: Vec::new() },
        }
    }

    /// Installs a device calibration (for phones other than the survey
    /// device).
    pub fn with_calibration(mut self, calibration: RssiCalibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Requires at least `n` audible APs before producing an estimate.
    pub fn with_min_aps(mut self, n: usize) -> Self {
        self.min_aps = n;
        self
    }

    /// The offline database (shared with UniLoc's feature extractor).
    pub fn db(&self) -> &WifiFingerprintDb {
        &self.db
    }

    /// The active calibration.
    pub fn calibration(&self) -> RssiCalibration {
        self.calibration
    }

}

impl LocalizationScheme for WifiFingerprintScheme {
    fn id(&self) -> SchemeId {
        SchemeId::Wifi
    }

    fn update(&mut self, frame: &SensorFrame) -> Option<LocationEstimate> {
        self.last_matches.clear();
        let scan = frame.wifi.as_ref()?;
        if scan.len() < self.min_aps {
            return None;
        }
        {
            // Capacity growth is a warmup artifact (the buffer's high-water
            // mark), not per-epoch work — keep it off the allocation meter.
            let _pause = uniloc_obs::alloc::pause();
            self.calibrated_buf.readings.clear();
            self.calibrated_buf.readings.reserve(scan.readings.len());
        }
        let calibration = self.calibration;
        self.calibrated_buf
            .readings
            .extend(scan.readings.iter().map(|&(id, rssi)| (id, calibration.apply(rssi))));
        self.db.match_scan_into(&self.calibrated_buf, TOP_K, &mut self.last_matches);
        let best = *self.last_matches.first()?;
        // Spread: scatter of the top-k candidate positions around the best.
        let spread = if self.last_matches.len() > 1 {
            let m = self
                .last_matches
                .iter()
                .skip(1)
                .map(|c| c.position.distance(best.position))
                .sum::<f64>()
                / (self.last_matches.len() - 1) as f64;
            Some(m)
        } else {
            None
        };
        Some(LocationEstimate { position: best.position, spread })
    }

    fn posterior(&self) -> Option<Vec<(uniloc_geom::Point, f64)>> {
        if self.last_matches.is_empty() {
            return None;
        }
        // Softmax over RSSI distances relative to the best match: a
        // candidate 3 dB worse carries ~37% of the best one's mass.
        let d0 = self.last_matches[0].distance;
        Some(
            self.last_matches
                .iter()
                .map(|m| (m.position, (-(m.distance - d0) / 3.0).exp()))
                .collect(),
        )
    }

    fn posterior_mean(&self) -> Option<uniloc_geom::Point> {
        if self.last_matches.is_empty() {
            return None;
        }
        let d0 = self.last_matches[0].distance;
        let weight = |m: &crate::fingerprint::FingerprintMatch| (-(m.distance - d0) / 3.0).exp();
        let w: f64 = self.last_matches.iter().map(weight).sum();
        if w > 0.0 {
            let x = self.last_matches.iter().map(|m| weight(m) * m.position.x).sum::<f64>() / w;
            let y = self.last_matches.iter().map(|m| weight(m) * m.position.y).sum::<f64>() / w;
            Some(uniloc_geom::Point::new(x, y))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_rng::Rng;
    use uniloc_env::{campus, venues, GaitProfile, Walker};
    use uniloc_sensors::{DeviceProfile, SensorHub};

    fn scheme_for(scenario: &campus::Scenario, seed: u64) -> WifiFingerprintScheme {
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed);
        let points = scenario.survey_points(3.0, 12.0);
        WifiFingerprintScheme::new(WifiFingerprintDb::survey_wifi(&mut hub, &points))
    }

    fn run_and_measure(
        scenario: &campus::Scenario,
        scheme: &mut WifiFingerprintScheme,
        device: DeviceProfile,
        seed: u64,
    ) -> Vec<(f64, Option<f64>)> {
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(seed));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, device, seed + 1);
        hub.sample_walk(&walk, 0.5)
            .iter()
            .map(|f| {
                let err = scheme
                    .update(f)
                    .map(|e| e.position.distance(f.true_position));
                (f.t, err)
            })
            .collect()
    }

    #[test]
    fn accurate_in_training_office() {
        let scenario = venues::training_office(41);
        let mut scheme = scheme_for(&scenario, 42);
        let results = run_and_measure(&scenario, &mut scheme, DeviceProfile::nexus_5x(), 43);
        let errs: Vec<f64> = results.iter().filter_map(|r| r.1).collect();
        assert!(errs.len() > results.len() / 2, "WiFi must be mostly available indoors");
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 8.0, "office WiFi mean error {mean}");
    }

    #[test]
    fn unavailable_in_basement() {
        let scenario = campus::daily_path(44);
        let mut scheme = scheme_for(&scenario, 45);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(46));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 47);
        let frames = hub.sample_walk(&walk, 0.5);
        let mut basement_avail = 0usize;
        let mut basement_total = 0usize;
        for f in &frames {
            let (station_pt, _) = scenario.route.project(f.true_position);
            let _ = station_pt;
            if scenario.world.kind_at(f.true_position) == uniloc_env::EnvKind::Basement {
                basement_total += 1;
                basement_avail += usize::from(scheme.update(f).is_some());
            }
        }
        assert!(basement_total > 0);
        assert!(
            (basement_avail as f64) < 0.3 * basement_total as f64,
            "basement availability {basement_avail}/{basement_total}"
        );
    }

    #[test]
    fn heterogeneous_device_degrades_without_calibration() {
        let scenario = venues::training_office(48);
        let mut scheme = scheme_for(&scenario, 49);
        let nexus = run_and_measure(&scenario, &mut scheme, DeviceProfile::nexus_5x(), 50);
        let g3 = run_and_measure(&scenario, &mut scheme, DeviceProfile::lg_g3(), 50);
        let mean = |v: &[(f64, Option<f64>)]| {
            let e: Vec<f64> = v.iter().filter_map(|r| r.1).collect();
            e.iter().sum::<f64>() / e.len() as f64
        };
        assert!(
            mean(&g3) > mean(&nexus),
            "uncalibrated G3 ({}) should be worse than Nexus ({})",
            mean(&g3),
            mean(&nexus)
        );
    }

    #[test]
    fn calibration_recovers_heterogeneous_accuracy() {
        let scenario = venues::training_office(51);
        let base = scheme_for(&scenario, 52);
        // Learn the G3 -> Nexus transfer from paired observations.
        let mut nexus_hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 53);
        let mut g3_hub = SensorHub::new(&scenario.world, DeviceProfile::lg_g3(), 53);
        let mut pairs = Vec::new();
        for p in scenario.survey_points(6.0, 12.0) {
            let a = nexus_hub.scan_wifi(p);
            let b = g3_hub.scan_wifi(p);
            for (ra, rb) in a.readings.iter().zip(&b.readings) {
                if ra.0 == rb.0 {
                    pairs.push((rb.1, ra.1));
                }
            }
        }
        let cal = RssiCalibration::learn(&pairs).unwrap();
        let mut calibrated = base.clone().with_calibration(cal);
        let mut raw = base;
        let with_cal = run_and_measure(&scenario, &mut calibrated, DeviceProfile::lg_g3(), 54);
        let without = run_and_measure(&scenario, &mut raw, DeviceProfile::lg_g3(), 54);
        let mean = |v: &[(f64, Option<f64>)]| {
            let e: Vec<f64> = v.iter().filter_map(|r| r.1).collect();
            e.iter().sum::<f64>() / e.len() as f64
        };
        assert!(
            mean(&with_cal) < mean(&without),
            "calibrated ({}) must beat uncalibrated ({})",
            mean(&with_cal),
            mean(&without)
        );
    }

    #[test]
    fn min_aps_gate() {
        let scenario = venues::training_office(55);
        let scheme = scheme_for(&scenario, 56);
        let mut gated = scheme.with_min_aps(100); // impossible requirement
        let results = run_and_measure(&scenario, &mut gated, DeviceProfile::nexus_5x(), 57);
        assert!(results.iter().all(|r| r.1.is_none()));
    }
}
