//! Horus-style probabilistic WiFi fingerprinting ([2] in the paper).
//!
//! Where RADAR stores one RSSI sample per AP per location and matches by
//! Euclidean distance, Horus "handles the temporal variation of signals by
//! learning a distribution of RSSIs for every audible AP" and locates by
//! maximum likelihood. The paper notes the cost: "it requires hundreds of
//! samples to capture an accurate distribution at one location", which is
//! why its evaluation sticks with RADAR. We implement Horus as an optional
//! sixth scheme — it demonstrates the framework's generality and lets the
//! sample-count/accuracy trade-off be measured (see the
//! `horus_vs_radar` ablation in `uniloc-bench`).

use crate::estimate::{LocalizationScheme, LocationEstimate, SchemeId};
use uniloc_env::ApId;
use uniloc_geom::Point;
use uniloc_sensors::{SensorFrame, SensorHub, WifiScan};

/// Scheme id assigned to Horus when used through the engine.
pub const HORUS_SCHEME_ID: SchemeId = SchemeId::Custom(2);

/// Default standard-deviation floor (dB): with few samples, the empirical
/// deviation underestimates the true one; Horus-style systems clamp it.
pub const MIN_STD_DB: f64 = 1.5;

/// Per-AP RSSI distribution at one survey location.
#[derive(Debug, Clone, PartialEq)]
struct ApDistribution {
    ap: ApId,
    mean_dbm: f64,
    std_db: f64,
    samples: u32,
}

/// One probabilistic fingerprint: a location plus per-AP Gaussians.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbFingerprint {
    position: Point,
    distributions: Vec<ApDistribution>,
}

impl ProbFingerprint {
    /// Log-likelihood of an online scan under this fingerprint.
    ///
    /// APs audible online but never seen here are charged a miss penalty;
    /// APs in the fingerprint but silent online are ignored (they may be
    /// masked by the body — the lenient convention Horus uses).
    fn log_likelihood(&self, scan: &WifiScan, miss_penalty: f64) -> Option<f64> {
        let mut ll = 0.0;
        let mut matched = 0usize;
        for &(ap, rssi) in &scan.readings {
            match self.distributions.iter().find(|d| d.ap == ap) {
                Some(d) => {
                    let z = (rssi - d.mean_dbm) / d.std_db;
                    ll += -0.5 * z * z - d.std_db.ln();
                    matched += 1;
                }
                None => ll -= miss_penalty,
            }
        }
        (matched > 0).then_some(ll)
    }
}

/// A probabilistic (Horus-style) WiFi fingerprint database.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbFingerprintDb {
    entries: Vec<ProbFingerprint>,
    /// Log-likelihood penalty per online AP unseen at a location.
    miss_penalty: f64,
}

uniloc_stats::impl_json_struct!(ApDistribution { ap, mean_dbm, std_db, samples });
uniloc_stats::impl_json_struct!(ProbFingerprint { position, distributions });
uniloc_stats::impl_json_struct!(ProbFingerprintDb { entries, miss_penalty });

impl ProbFingerprintDb {
    /// Surveys the venue at `points`, taking `samples_per_point` scans per
    /// location and fitting a Gaussian per audible AP.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_point == 0`.
    pub fn survey(
        hub: &mut SensorHub<'_>,
        points: &[Point],
        samples_per_point: u32,
    ) -> Self {
        assert!(samples_per_point > 0, "need at least one sample per point");
        let mut entries = Vec::with_capacity(points.len());
        for &p in points {
            // Accumulate per-AP statistics over repeated scans.
            let mut acc: Vec<(ApId, f64, f64, u32)> = Vec::new(); // (ap, sum, sum_sq, n)
            for _ in 0..samples_per_point {
                for &(ap, rssi) in &hub.scan_wifi(p).readings {
                    match acc.iter_mut().find(|(a, ..)| *a == ap) {
                        Some((_, s, ss, n)) => {
                            *s += rssi;
                            *ss += rssi * rssi;
                            *n += 1;
                        }
                        None => acc.push((ap, rssi, rssi * rssi, 1)),
                    }
                }
            }
            let distributions: Vec<ApDistribution> = acc
                .into_iter()
                // Require the AP to be audible in most samples: flickering
                // edge APs make poor evidence.
                .filter(|(_, _, _, n)| *n * 2 > samples_per_point)
                .map(|(ap, s, ss, n)| {
                    let mean = s / n as f64;
                    let var = (ss / n as f64 - mean * mean).max(0.0);
                    ApDistribution {
                        ap,
                        mean_dbm: mean,
                        std_db: var.sqrt().max(MIN_STD_DB),
                        samples: n,
                    }
                })
                .collect();
            if !distributions.is_empty() {
                entries.push(ProbFingerprint { position: p, distributions });
            }
        }
        ProbFingerprintDb { entries, miss_penalty: 6.0 }
    }

    /// Number of usable probabilistic fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the survey produced nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum-likelihood location for an online scan, with the
    /// log-likelihood gap to the runner-up as a crude confidence proxy.
    pub fn locate(&self, scan: &WifiScan) -> Option<(Point, f64)> {
        if scan.is_empty() {
            return None;
        }
        let mut best: Option<(Point, f64)> = None;
        let mut second: Option<f64> = None;
        for e in &self.entries {
            if let Some(ll) = e.log_likelihood(scan, self.miss_penalty) {
                match best {
                    Some((_, b)) if ll <= b => {
                        if second.is_none_or(|s| ll > s) {
                            second = Some(ll);
                        }
                    }
                    _ => {
                        second = best.map(|(_, b)| b);
                        best = Some((e.position, ll));
                    }
                }
            }
        }
        best.map(|(p, ll)| (p, second.map_or(0.0, |s| ll - s)))
    }
}

/// The Horus scheme, usable anywhere a [`LocalizationScheme`] is.
#[derive(Debug, Clone)]
pub struct HorusScheme {
    db: ProbFingerprintDb,
    min_aps: usize,
}

impl HorusScheme {
    /// Creates the scheme over a probabilistic database.
    pub fn new(db: ProbFingerprintDb) -> Self {
        HorusScheme { db, min_aps: 3 }
    }

    /// The underlying database.
    pub fn db(&self) -> &ProbFingerprintDb {
        &self.db
    }
}

impl LocalizationScheme for HorusScheme {
    fn id(&self) -> SchemeId {
        HORUS_SCHEME_ID
    }

    fn name(&self) -> String {
        "horus".to_owned()
    }

    fn update(&mut self, frame: &SensorFrame) -> Option<LocationEstimate> {
        let scan = frame.wifi.as_ref()?;
        if scan.len() < self.min_aps {
            return None;
        }
        let (p, _gap) = self.db.locate(scan)?;
        Some(LocationEstimate::at(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_rng::Rng;
    use uniloc_env::{venues, GaitProfile, Walker};
    use uniloc_sensors::DeviceProfile;

    fn survey_db(samples: u32, seed: u64) -> (uniloc_env::Scenario, ProbFingerprintDb) {
        let scenario = venues::training_office(seed);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed + 1);
        let points = scenario.survey_points(3.0, 12.0);
        let db = ProbFingerprintDb::survey(&mut hub, &points, samples);
        (scenario, db)
    }

    fn mean_error(
        scenario: &uniloc_env::Scenario,
        scheme: &mut dyn LocalizationScheme,
        seed: u64,
    ) -> f64 {
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(seed));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed + 1);
        let errs: Vec<f64> = hub
            .sample_walk(&walk, 0.5)
            .iter()
            .filter_map(|f| scheme.update(f).map(|e| e.position.distance(f.true_position)))
            .collect();
        assert!(!errs.is_empty(), "Horus never produced an estimate");
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    #[test]
    fn survey_builds_distributions() {
        let (_, db) = survey_db(8, 121);
        assert!(db.len() > 100, "db has only {} entries", db.len());
        assert!(!db.is_empty());
    }

    #[test]
    fn locates_accurately_with_enough_samples() {
        let (scenario, db) = survey_db(8, 123);
        let mut scheme = HorusScheme::new(db);
        let err = mean_error(&scenario, &mut scheme, 125);
        assert!(err < 6.0, "Horus office error {err:.2}");
    }

    #[test]
    fn more_samples_do_not_hurt() {
        // The paper's point: Horus needs many samples for its distributions.
        let (scenario, db1) = survey_db(1, 127);
        let (_, db8) = survey_db(8, 127);
        let e1 = mean_error(&scenario, &mut HorusScheme::new(db1), 129);
        let e8 = mean_error(&scenario, &mut HorusScheme::new(db8), 129);
        assert!(
            e8 <= e1 * 1.2 + 0.3,
            "8-sample survey ({e8:.2}) should not lose to 1-sample ({e1:.2})"
        );
    }

    #[test]
    fn empty_scan_and_weak_scan_yield_none() {
        let (_, db) = survey_db(4, 131);
        let mut scheme = HorusScheme::new(db);
        let frame = SensorFrame {
            t: 0.0,
            true_position: Point::origin(),
            wifi: Some(WifiScan::default()),
            cell: None,
            gps: None,
            steps: vec![],
            landmark: None,
            light_lux: 300.0,
            magnetic_variance: 0.5,
        };
        assert!(scheme.update(&frame).is_none());
        let weak = SensorFrame {
            wifi: Some(WifiScan { readings: vec![(ApId(0), -60.0)] }),
            ..frame
        };
        assert!(scheme.update(&weak).is_none(), "below the 3-AP gate");
    }

    #[test]
    fn foreign_scan_yields_none() {
        let (_, db) = survey_db(4, 133);
        let scan = WifiScan {
            readings: vec![
                (ApId(9_999), -50.0),
                (ApId(9_998), -55.0),
                (ApId(9_997), -60.0),
            ],
        };
        // No location matches any AP -> no likelihood -> None.
        assert!(db.locate(&scan).is_none());
    }

    #[test]
    fn scheme_identity() {
        let (_, db) = survey_db(2, 135);
        let s = HorusScheme::new(db);
        assert_eq!(s.id(), HORUS_SCHEME_ID);
        assert_eq!(s.name(), "horus");
    }

    #[test]
    fn json_roundtrip() {
        let (_, db) = survey_db(2, 137);
        let json = uniloc_stats::json::to_string(&db);
        let back: ProbFingerprintDb = uniloc_stats::json::from_str(&json).unwrap();
        assert_eq!(db.len(), back.len());
    }
}
