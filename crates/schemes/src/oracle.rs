//! The ground-truth-assisted single-selection baseline.
//!
//! The paper's "Oracle" line (Figs. 2, 3, 5): "at each location, as we know
//! the ground truth in the experiment, [the oracle] chooses the best scheme
//! as its result" — the upper bound for any *selection* strategy, and the
//! line UniLoc2 is shown to beat by combining rather than selecting.

use crate::estimate::{LocationEstimate, SchemeId};
use uniloc_geom::Point;

/// Selects the best available scheme with ground-truth knowledge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Oracle;

impl Oracle {
    /// Picks the estimate closest to `truth` from the per-scheme outputs.
    /// Returns `(scheme, its estimate, its error)` or `None` when no scheme
    /// produced anything.
    pub fn select(
        estimates: &[(SchemeId, Option<LocationEstimate>)],
        truth: Point,
    ) -> Option<(SchemeId, LocationEstimate, f64)> {
        estimates
            .iter()
            .filter_map(|(id, est)| {
                est.map(|e| (*id, e, e.position.distance(truth)))
            })
            // `total_cmp` so a NaN error (poisoned estimate) ranks last
            // deterministically instead of panicking the walk.
            .min_by(|a, b| a.2.total_cmp(&b.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_minimum_error_scheme() {
        let truth = Point::new(10.0, 10.0);
        let est = vec![
            (SchemeId::Gps, Some(LocationEstimate::at(Point::new(25.0, 10.0)))),
            (SchemeId::Wifi, Some(LocationEstimate::at(Point::new(12.0, 10.0)))),
            (SchemeId::Motion, Some(LocationEstimate::at(Point::new(10.0, 16.0)))),
        ];
        let (id, _, err) = Oracle::select(&est, truth).unwrap();
        assert_eq!(id, SchemeId::Wifi);
        assert!((err - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skips_unavailable_schemes() {
        let truth = Point::origin();
        let est = vec![
            (SchemeId::Gps, None),
            (SchemeId::Cellular, Some(LocationEstimate::at(Point::new(30.0, 0.0)))),
        ];
        let (id, _, _) = Oracle::select(&est, truth).unwrap();
        assert_eq!(id, SchemeId::Cellular);
    }

    #[test]
    fn none_when_nothing_available() {
        let est = vec![(SchemeId::Gps, None), (SchemeId::Wifi, None)];
        assert!(Oracle::select(&est, Point::origin()).is_none());
    }
}
