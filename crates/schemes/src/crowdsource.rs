//! Crowdsourced radio-map construction (Zee [9] / LiFS [10] style).
//!
//! The paper *assumes* its fingerprint databases are kept fresh by "service
//! providers or crowdsourcing [9], [10]". This module implements that
//! assumption: instead of a surveyed grid, the WiFi database is built from
//! ordinary walks — each scan is stamped with the walker's *estimated*
//! position (e.g. from PDR) and a quality weight, nearby observations are
//! clustered into grid cells, and per-cell RSSI vectors are averaged.
//! Position error in the contributing estimates smears the map, so a
//! crowdsourced database is coarser than a surveyed one — which the
//! fingerprint-density feature (`beta_1`) then correctly reports.

use crate::fingerprint::{FingerprintDb, WifiFingerprintDb};
use uniloc_env::ApId;
use uniloc_geom::Point;
use uniloc_sensors::WifiScan;

/// One crowdsourced observation: a scan stamped with an estimated position.
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdObservation {
    /// The contributor's position estimate when the scan was taken.
    pub position: Point,
    /// The scan itself.
    pub scan: WifiScan,
    /// Contributor confidence in `position` (0..=1]; e.g. higher right
    /// after a landmark calibration.
    pub weight: f64,
}

/// Accumulates crowdsourced observations into a radio map.
///
/// # Examples
///
/// ```no_run
/// use uniloc_schemes::crowdsource::RadioMapBuilder;
/// use uniloc_geom::Point;
/// use uniloc_sensors::WifiScan;
///
/// let mut builder = RadioMapBuilder::new(3.0);
/// // ... feed (estimated position, scan, weight) triples from walks ...
/// # let scan = WifiScan::default();
/// builder.observe(Point::new(12.0, 5.0), scan, 0.8);
/// let db = builder.build();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RadioMapBuilder {
    cell_m: f64,
    observations: Vec<CrowdObservation>,
}

uniloc_stats::impl_json_struct!(CrowdObservation { position, scan, weight });
uniloc_stats::impl_json_struct!(RadioMapBuilder { cell_m, observations });

impl RadioMapBuilder {
    /// Creates a builder with the given grid cell size (m).
    ///
    /// # Panics
    ///
    /// Panics if `cell_m <= 0`.
    pub fn new(cell_m: f64) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive");
        RadioMapBuilder { cell_m, observations: Vec::new() }
    }

    /// Adds one observation. Zero/negative weights and empty scans are
    /// dropped (they cannot contribute).
    pub fn observe(&mut self, position: Point, scan: WifiScan, weight: f64) {
        if weight > 0.0 && !scan.is_empty() && position.is_finite() {
            self.observations.push(CrowdObservation { position, scan, weight: weight.min(1.0) });
        }
    }

    /// Number of accepted observations so far.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether nothing has been contributed yet.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Aggregates the observations into a [`WifiFingerprintDb`]: one
    /// fingerprint per grid cell, each AP's RSSI the weight-averaged reading
    /// over the cell's observations.
    pub fn build(&self) -> WifiFingerprintDb {
        use std::collections::BTreeMap;
        // cell -> (sum_w, sum_w*x, sum_w*y, ap -> (sum_w, sum_w*rssi))
        #[derive(Default)]
        struct Cell {
            w: f64,
            wx: f64,
            wy: f64,
            aps: BTreeMap<u32, (f64, f64)>,
        }
        let mut cells: BTreeMap<(i64, i64), Cell> = BTreeMap::new();
        for obs in &self.observations {
            let key = (
                (obs.position.x / self.cell_m).floor() as i64,
                (obs.position.y / self.cell_m).floor() as i64,
            );
            let cell = cells.entry(key).or_default();
            cell.w += obs.weight;
            cell.wx += obs.weight * obs.position.x;
            cell.wy += obs.weight * obs.position.y;
            for &(ap, rssi) in &obs.scan.readings {
                let e = cell.aps.entry(ap.0).or_insert((0.0, 0.0));
                e.0 += obs.weight;
                e.1 += obs.weight * rssi;
            }
        }
        let entries = cells.into_values().filter(|c| c.w > 0.0).map(|c| {
            let pos = Point::new(c.wx / c.w, c.wy / c.w);
            let readings: Vec<(ApId, f64)> = c
                .aps
                .iter()
                // Keep APs heard in a meaningful share of the cell's mass.
                .filter(|(_, (w, _))| *w >= 0.3 * c.w)
                .map(|(&ap, &(w, wr))| (ApId(ap), wr / w))
                .collect();
            (pos, WifiScan { readings })
        });
        FingerprintDb::from_entries(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wifi::WifiFingerprintScheme;
    use crate::LocalizationScheme;
    use uniloc_rng::Rng;
    use uniloc_env::{venues, GaitProfile, Walker};
    use uniloc_sensors::{DeviceProfile, SensorHub};

    #[test]
    fn builder_validates_input() {
        let mut b = RadioMapBuilder::new(3.0);
        assert!(b.is_empty());
        b.observe(Point::new(1.0, 1.0), WifiScan::default(), 1.0); // empty scan dropped
        b.observe(Point::new(1.0, 1.0), scan(&[(0, -50.0)]), 0.0); // zero weight dropped
        b.observe(Point::new(f64::NAN, 1.0), scan(&[(0, -50.0)]), 1.0); // NaN dropped
        assert!(b.is_empty());
        b.observe(Point::new(1.0, 1.0), scan(&[(0, -50.0)]), 0.7);
        assert_eq!(b.len(), 1);
    }

    fn scan(pairs: &[(u32, f64)]) -> WifiScan {
        WifiScan { readings: pairs.iter().map(|&(a, r)| (ApId(a), r)).collect() }
    }

    #[test]
    fn aggregation_weight_averages_within_cells() {
        let mut b = RadioMapBuilder::new(10.0);
        // Two observations in the same cell with different weights.
        b.observe(Point::new(2.0, 2.0), scan(&[(0, -40.0)]), 1.0);
        b.observe(Point::new(4.0, 2.0), scan(&[(0, -60.0)]), 1.0);
        let db = b.build();
        assert_eq!(db.len(), 1);
        let (pos, fp) = db.entries().next().unwrap();
        assert!((pos.x - 3.0).abs() < 1e-9);
        assert!((fp.rssi(ApId(0)).unwrap() + 50.0).abs() < 1e-9);
    }

    #[test]
    fn rare_aps_filtered_from_cells() {
        let mut b = RadioMapBuilder::new(10.0);
        for _ in 0..10 {
            b.observe(Point::new(2.0, 2.0), scan(&[(0, -50.0)]), 1.0);
        }
        // One flickering AP observed once.
        b.observe(Point::new(2.5, 2.0), scan(&[(0, -50.0), (7, -85.0)]), 1.0);
        let db = b.build();
        let (_, fp) = db.entries().next().unwrap();
        assert!(fp.rssi(ApId(0)).is_some());
        assert!(fp.rssi(ApId(7)).is_none(), "1/11 of cell mass must be filtered");
    }

    #[test]
    fn crowdsourced_map_localizes_close_to_surveyed() {
        // Build a radio map from 3 noisy contributor walks, then localize a
        // fresh walk against it and against the surveyed map.
        let scenario = venues::training_office(141);
        let mut builder = RadioMapBuilder::new(3.0);
        let mut noise_rng = Rng::seed_from_u64(142);
        for walk_idx in 0..3u64 {
            let mut walker = Walker::new(
                GaitProfile::average(),
                Rng::seed_from_u64(143 + walk_idx),
            );
            let walk = walker.walk(&scenario.route);
            let mut hub =
                SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 150 + walk_idx);
            for f in hub.sample_walk(&walk, 0.5) {
                if let Some(scan) = f.wifi {
                    // Contributor position = truth + 1.5 m PDR-grade noise.
                    let noisy = Point::new(
                        f.true_position.x + noise_rng.gen_range(-1.5..1.5),
                        f.true_position.y + noise_rng.gen_range(-1.5..1.5),
                    );
                    builder.observe(noisy, scan, 0.8);
                }
            }
        }
        let crowd_db = builder.build();
        assert!(crowd_db.len() > 30, "crowd map too sparse: {}", crowd_db.len());

        let mut surveyed_hub =
            SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 160);
        let surveyed = WifiFingerprintDb::survey_wifi(
            &mut surveyed_hub,
            &scenario.survey_points(3.0, 12.0),
        );

        let mut crowd_scheme = WifiFingerprintScheme::new(crowd_db).with_min_aps(3);
        let mut surveyed_scheme = WifiFingerprintScheme::new(surveyed).with_min_aps(3);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(161));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 162);
        let frames = hub.sample_walk(&walk, 0.5);
        let err = |s: &mut WifiFingerprintScheme| {
            let e: Vec<f64> = frames
                .iter()
                .filter_map(|f| s.update(f).map(|e| e.position.distance(f.true_position)))
                .collect();
            e.iter().sum::<f64>() / e.len() as f64
        };
        let crowd_err = err(&mut crowd_scheme);
        let surveyed_err = err(&mut surveyed_scheme);
        assert!(crowd_err < 10.0, "crowd-map error {crowd_err:.2}");
        assert!(
            crowd_err < surveyed_err * 3.0 + 2.0,
            "crowd map ({crowd_err:.2}) too far behind surveyed ({surveyed_err:.2})"
        );
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_panics() {
        RadioMapBuilder::new(0.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut b = RadioMapBuilder::new(2.0);
        b.observe(Point::new(1.0, 2.0), scan(&[(3, -44.0)]), 0.9);
        let json = uniloc_stats::json::to_string(&b);
        let back: RadioMapBuilder = uniloc_stats::json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
