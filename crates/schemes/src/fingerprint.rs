//! Offline RSSI fingerprint databases.
//!
//! RADAR-style fingerprinting needs an offline survey: "we first build an
//! offline fingerprint database by collecting RSSIs from all audible APs at
//! different locations" — 1-3 m grids indoors, 12 m outdoors, "each offline
//! fingerprint has one sample from each audible AP". The same machinery
//! serves the cellular scheme over tower RSSIs.

use crate::index::SignalIndex;
use uniloc_geom::Point;
use uniloc_sensors::{CellScan, SensorHub, WifiScan};

/// Default penalty (dB) charged per AP audible in only one of two compared
/// scans.
pub const DEFAULT_MISSING_PENALTY_DBM: f64 = 12.0;

/// Scans that support the RSSI fingerprint distance.
pub trait RssiLike: Clone {
    /// Fingerprint (Euclidean) distance; `None` when no APs are shared.
    fn fingerprint_distance(&self, other: &Self, missing_penalty: f64) -> Option<f64>;
    /// Whether nothing was audible.
    fn no_signal(&self) -> bool;
    /// Number of raw `(id, RSSI)` readings in the scan.
    fn reading_count(&self) -> usize;
    /// The `i`-th reading as a plain `(u32 id, RSSI)` pair, in the scan's
    /// own reading order. The `u32` must order exactly like the typed id
    /// (true for `ApId`/`TowerId` newtypes over `u32`), so the flat index
    /// slabs reproduce the typed merge bit-for-bit.
    fn reading(&self, i: usize) -> (u32, f64);
}

impl RssiLike for WifiScan {
    fn fingerprint_distance(&self, other: &Self, missing_penalty: f64) -> Option<f64> {
        self.distance(other, missing_penalty)
    }
    fn no_signal(&self) -> bool {
        self.is_empty()
    }
    fn reading_count(&self) -> usize {
        self.readings.len()
    }
    fn reading(&self, i: usize) -> (u32, f64) {
        let (id, r) = self.readings[i];
        (id.0, r)
    }
}

impl RssiLike for CellScan {
    fn fingerprint_distance(&self, other: &Self, missing_penalty: f64) -> Option<f64> {
        self.distance(other, missing_penalty)
    }
    fn no_signal(&self) -> bool {
        self.is_empty()
    }
    fn reading_count(&self) -> usize {
        self.readings.len()
    }
    fn reading(&self, i: usize) -> (u32, f64) {
        let (id, r) = self.readings[i];
        (id.0, r)
    }
}

/// One match candidate from a fingerprint lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerprintMatch {
    /// The fingerprint's survey position.
    pub position: Point,
    /// RSSI distance between the online scan and this fingerprint.
    pub distance: f64,
}

/// An offline fingerprint database over scans of type `S`.
///
/// Construction builds a [`SignalIndex`] (RSSI-quantized inverted index +
/// struct-of-arrays slabs) over the entries once, so every online
/// [`match_scan`](Self::match_scan) prunes candidates instead of scoring
/// the whole survey — with output proven identical to the linear scan
/// (see the `index` module docs and `tests/index_differential.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintDb<S> {
    entries: Vec<(Point, S)>,
    missing_penalty: f64,
    index: SignalIndex,
}

/// WiFi fingerprint database.
pub type WifiFingerprintDb = FingerprintDb<WifiScan>;

/// Cellular fingerprint database.
pub type CellFingerprintDb = FingerprintDb<CellScan>;

impl<S: RssiLike> FingerprintDb<S> {
    /// Builds a database from raw `(position, scan)` pairs, dropping empty
    /// scans (a fingerprint without any audible AP cannot be matched).
    pub fn from_entries(entries: impl IntoIterator<Item = (Point, S)>) -> Self {
        let entries: Vec<(Point, S)> = entries
            .into_iter()
            .filter(|(_, s)| !s.no_signal())
            .collect();
        Self::with_entries(entries, DEFAULT_MISSING_PENALTY_DBM)
    }

    /// Internal constructor: every database goes through here so the
    /// signal index is always built from exactly the stored entries.
    fn with_entries(entries: Vec<(Point, S)>, missing_penalty: f64) -> Self {
        let index = SignalIndex::build(&entries);
        FingerprintDb { entries, missing_penalty, index }
    }

    /// Overrides the missing-AP penalty.
    pub fn with_missing_penalty(mut self, penalty: f64) -> Self {
        self.missing_penalty = penalty;
        self
    }

    /// Number of usable fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the survey produced no usable fingerprints.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Survey positions of all fingerprints.
    pub fn positions(&self) -> impl Iterator<Item = Point> + '_ {
        self.entries.iter().map(|(p, _)| *p)
    }

    /// All `(position, fingerprint)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (Point, &S)> + '_ {
        self.entries.iter().map(|(p, s)| (*p, s))
    }

    /// The `k` fingerprints closest (in RSSI space) to an online scan,
    /// sorted by ascending distance. Empty when the scan or the database is
    /// empty or no fingerprint shares an AP with the scan.
    pub fn match_scan(&self, scan: &S, k: usize) -> Vec<FingerprintMatch> {
        let mut out = Vec::new();
        self.match_scan_into(scan, k, &mut out);
        out
    }

    /// [`match_scan`](Self::match_scan) into a caller-owned buffer — the
    /// hot-path form the per-epoch loop uses to stay allocation-free.
    pub fn match_scan_into(&self, scan: &S, k: usize, out: &mut Vec<FingerprintMatch>) {
        self.index.match_into(scan, k, self.missing_penalty, out);
    }

    /// The retained linear-scan reference implementation of
    /// [`match_scan`](Self::match_scan): scores every entry, ranks with the
    /// same stable `total_cmp` sort. The differential suite asserts the
    /// indexed path returns exactly this on every input; it is not used on
    /// the hot path.
    pub fn match_scan_linear(&self, scan: &S, k: usize) -> Vec<FingerprintMatch> {
        if scan.no_signal() || k == 0 {
            return Vec::new();
        }
        let mut matches: Vec<FingerprintMatch> = self
            .entries
            .iter()
            .filter_map(|(p, fp)| {
                scan.fingerprint_distance(fp, self.missing_penalty)
                    .map(|d| FingerprintMatch { position: *p, distance: d })
            })
            .collect();
        // `total_cmp` instead of `partial_cmp(..).expect(..)`: a NaN
        // distance (corrupt RSSI that slipped past upstream validation)
        // must sort deterministically, not panic mid-walk.
        matches.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        matches.truncate(k);
        matches
    }

    /// Average spacing of fingerprints around `p`: the paper's spatial
    /// density feature (`beta_1`) — "measured by the average distance
    /// between two fingerprints around the location under consideration".
    ///
    /// Computed as the mean nearest-neighbor distance among fingerprints
    /// within `radius` of `p`. Returns `None` when fewer than two
    /// fingerprints are in range (density undefined — treat as very sparse).
    pub fn local_density(&self, p: Point, radius: f64) -> Option<f64> {
        self.index.local_density(p, radius)
    }

    /// Thins the database so remaining fingerprints are at least
    /// `min_spacing` apart (greedy) — used for the paper's density sweep
    /// ("for larger fingerprint distances (e.g., 5 m, 10 m, and 15 m), we
    /// downsample the fine-grained fingerprint data").
    pub fn downsampled(&self, min_spacing: f64) -> Self {
        let mut kept: Vec<(Point, S)> = Vec::new();
        for (p, s) in &self.entries {
            if kept.iter().all(|(q, _)| q.distance(*p) >= min_spacing) {
                kept.push((*p, s.clone()));
            }
        }
        Self::with_entries(kept, self.missing_penalty)
    }
}

impl WifiFingerprintDb {
    /// Surveys WiFi fingerprints at the given points with a device hub —
    /// the offline phase of RADAR.
    pub fn survey_wifi(hub: &mut SensorHub<'_>, points: &[Point]) -> Self {
        FingerprintDb::from_entries(points.iter().map(|&p| (p, hub.scan_wifi(p))))
    }
}

impl CellFingerprintDb {
    /// Surveys cellular fingerprints at the given points.
    pub fn survey_cell(hub: &mut SensorHub<'_>, points: &[Point]) -> Self {
        FingerprintDb::from_entries(points.iter().map(|&p| (p, hub.scan_cell(p))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_env::campus;
    use uniloc_sensors::DeviceProfile;

    fn synthetic_db() -> WifiFingerprintDb {
        use uniloc_env::ApId;
        // Fingerprints along a line: RSSI of a single AP falls with x.
        let entries = (0..20).map(|i| {
            let p = Point::new(i as f64 * 2.0, 0.0);
            let scan = WifiScan { readings: vec![(ApId(0), -40.0 - i as f64 * 2.0)] };
            (p, scan)
        });
        FingerprintDb::from_entries(entries)
    }

    #[test]
    fn match_scan_finds_nearest_rssi() {
        use uniloc_env::ApId;
        let db = synthetic_db();
        let online = WifiScan { readings: vec![(ApId(0), -50.0)] };
        let m = db.match_scan(&online, 3);
        assert_eq!(m.len(), 3);
        // -50 dBm corresponds to i = 5 -> x = 10.
        assert_eq!(m[0].position, Point::new(10.0, 0.0));
        assert!(m[0].distance <= m[1].distance && m[1].distance <= m[2].distance);
    }

    #[test]
    fn empty_scan_matches_nothing() {
        let db = synthetic_db();
        assert!(db.match_scan(&WifiScan::default(), 3).is_empty());
        assert!(db.match_scan(&synthetic_db().entries[0].1.clone(), 0).is_empty());
    }

    #[test]
    fn empty_scans_dropped_at_build() {
        use uniloc_env::ApId;
        let db = FingerprintDb::from_entries(vec![
            (Point::origin(), WifiScan::default()),
            (Point::new(1.0, 0.0), WifiScan { readings: vec![(ApId(0), -50.0)] }),
        ]);
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn local_density_reflects_spacing() {
        let db = synthetic_db(); // 2 m spacing
        let d = db.local_density(Point::new(10.0, 0.0), 10.0).unwrap();
        assert!((d - 2.0).abs() < 1e-9, "density {d}");
        let sparse = db.downsampled(6.0);
        let d6 = sparse.local_density(Point::new(10.0, 0.0), 12.0).unwrap();
        assert!(d6 >= 6.0, "downsampled density {d6}");
    }

    #[test]
    fn local_density_needs_two_neighbors() {
        let db = synthetic_db();
        assert!(db.local_density(Point::new(500.0, 0.0), 5.0).is_none());
    }

    #[test]
    fn downsampled_respects_spacing() {
        let db = synthetic_db();
        let thin = db.downsampled(5.0);
        let pts: Vec<Point> = thin.positions().collect();
        for (i, a) in pts.iter().enumerate() {
            for b in pts.iter().skip(i + 1) {
                assert!(a.distance(*b) >= 5.0);
            }
        }
        assert!(thin.len() < db.len());
    }

    #[test]
    fn survey_on_campus_produces_usable_db() {
        let scenario = campus::daily_path(21);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 22);
        let points = scenario.survey_points(3.0, 12.0);
        let db = WifiFingerprintDb::survey_wifi(&mut hub, &points);
        assert!(db.len() > 50, "db too small: {}", db.len());
        // An online scan in the office matches fingerprints near the truth.
        let p = scenario.route.point_at(25.0);
        let online = hub.scan_wifi(p);
        let m = db.match_scan(&online, 1);
        assert!(!m.is_empty());
        assert!(m[0].position.distance(p) < 15.0, "match {} m away", m[0].position.distance(p));
    }

    #[test]
    fn cell_survey_works() {
        let scenario = campus::daily_path(23);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 24);
        let points = scenario.survey_points(3.0, 12.0);
        let db = CellFingerprintDb::survey_cell(&mut hub, &points);
        assert!(!db.is_empty());
    }
}
