//! The sensor-data fusion scheme (Travi-Navi [11]).
//!
//! "We adopt the approach in [11] and assign different weights to the
//! particles of motion-based PDR according to the RSSI distances between
//! the online and offline RSSI vectors." The scheme is the PDR core plus a
//! WiFi reweighting pass: the online scan is matched against the offline
//! database and each particle is scored by a fixed-width Gaussian mixture
//! around the top candidate positions. The kernel is deliberately *not*
//! quality-adaptive: as the paper observes, "the existing fusion-based
//! schemes process the RSSI data in the same way at different locations,
//! but do not consider the quality variation of RSSI data" — so where the
//! scan is junk (e.g. the 180 m mark of the daily path), "the low-quality
//! RSSIs make the estimated location depart from the user's true
//! location". Recognizing and exploiting that variation is UniLoc's job,
//! not the baseline's.

use crate::estimate::{LocalizationScheme, LocationEstimate, SchemeId};
use crate::fingerprint::{FingerprintMatch, WifiFingerprintDb};
use crate::index::SpatialGrid;
use crate::pdr::{PdrConfig, PdrCore};
use uniloc_geom::{FloorPlan, Point};
use uniloc_sensors::{SensorFrame, WifiScan};

/// Grid cell size (m) of the spatial hash over fingerprint positions (the
/// per-particle nearest-fingerprint loop would otherwise be quadratic).
const GRID_CELL_M: f64 = 5.0;

/// Candidates retained for availability checks.
const FUSION_TOP_K: usize = 5;

/// Likelihood floor: keeps particle weights positive so one scan cannot
/// annihilate the cloud.
const LIKELIHOOD_FLOOR: f64 = 0.05;

/// RSSI likelihood kernel width (dB).
const RSSI_SIGMA_DB: f64 = 8.0;

/// The WiFi + PDR fusion scheme.
#[derive(Debug, Clone)]
pub struct FusionScheme {
    core: PdrCore,
    db: WifiFingerprintDb,
    index: SpatialGrid,
    fingerprints: Vec<WifiScan>,
    /// Match scratch, recycled across epochs so steady-state reweighting
    /// performs no heap allocation.
    match_buf: Vec<FingerprintMatch>,
}

impl FusionScheme {
    /// Creates the scheme: PDR core plus the offline WiFi fingerprint
    /// database used for particle reweighting.
    pub fn new(
        plan: FloorPlan,
        start: Point,
        config: PdrConfig,
        db: WifiFingerprintDb,
        seed: u64,
    ) -> Self {
        let (positions, fingerprints): (Vec<Point>, Vec<WifiScan>) =
            db.entries().map(|(p, s)| (p, s.clone())).unzip();
        let index = SpatialGrid::build(positions, GRID_CELL_M);
        FusionScheme {
            core: PdrCore::new(plan, start, config, seed),
            db,
            index,
            fingerprints,
            match_buf: Vec::new(),
        }
    }

    /// The offline database (shared with UniLoc's feature extractor).
    pub fn db(&self) -> &WifiFingerprintDb {
        &self.db
    }

    /// Reweights particles by the RSSI likelihood of the online scan
    /// against each particle's nearest offline fingerprint. Deliberately
    /// quality-blind: Travi-Navi "process[es] the RSSI data in the same way
    /// at different locations" — there is no gate on scan quality, so
    /// low-quality RSSIs really do drag the estimate, as the paper observes
    /// at the 180 m mark of the daily path.
    fn rssi_reweight(&mut self, scan: &WifiScan) {
        if scan.is_empty() || self.db.is_empty() {
            return;
        }
        self.db.match_scan_into(scan, FUSION_TOP_K, &mut self.match_buf);
        if self.match_buf.is_empty() {
            return;
        }
        // Travi-Navi weighting: each particle is scored by the RSSI
        // distance between the online scan and the offline fingerprint
        // nearest to that particle ("assign different weights to the
        // particles of motion-based PDR according to the RSSI distances
        // between the online and offline RSSI vectors"). The pass is
        // deliberately *not* quality-adaptive: as the paper observes, the
        // "existing fusion-based schemes process the RSSI data in the same
        // way at different locations, but do not consider the quality
        // variation of RSSI data" — so where the scan is junk (e.g. the
        // 180 m mark of the daily path), "the low-quality RSSIs make the
        // estimated location depart from the user's true location".
        // Recognizing that variation is UniLoc's job, not the baseline's.
        let two_sigma2 = 2.0 * RSSI_SIGMA_DB * RSSI_SIGMA_DB;
        let index = &self.index;
        let fingerprints = &self.fingerprints;
        let _ = self.core.pf.reweight(|p| {
            let l = match index.nearest(p.pos) {
                Some(i) => match scan.distance(&fingerprints[i], 12.0) {
                    Some(d) => (-d * d / two_sigma2).exp(),
                    None => 0.0,
                },
                None => 0.0,
            };
            LIKELIHOOD_FLOOR + l
        });
        self.core
            .pf
            .maybe_resample(self.core.config.resample_frac, &mut self.core.rng);
    }
}

impl LocalizationScheme for FusionScheme {
    fn id(&self) -> SchemeId {
        SchemeId::Fusion
    }

    fn update(&mut self, frame: &SensorFrame) -> Option<LocationEstimate> {
        for step in &frame.steps {
            self.core.advance_step(step);
        }
        if let Some(lm) = frame.landmark {
            self.core.calibrate_landmark(lm.position);
        }
        if let Some(scan) = frame.wifi.as_ref() {
            self.rssi_reweight(scan);
        }
        // Sidecar-only telemetry: degeneracy of the particle cloud after
        // the RSSI reweight.
        uniloc_obs::global_metrics()
            .gauge("fusion.particle_filter.ess")
            .set(self.core.pf.effective_sample_size());
        Some(self.core.estimate())
    }

    fn posterior(&self) -> Option<Vec<(Point, f64)>> {
        Some(self.core.posterior())
    }

    fn posterior_mean(&self) -> Option<Point> {
        self.core.posterior_mean()
    }

    fn reset(&mut self) {
        self.core.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdr::PdrScheme;
    use uniloc_rng::Rng;
    use uniloc_env::{campus, venues, GaitProfile, Walker};
    use uniloc_sensors::{DeviceProfile, SensorHub};

    fn build_fusion(scenario: &campus::Scenario, seed: u64) -> FusionScheme {
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed);
        let points = scenario.survey_points(3.0, 12.0);
        let db = WifiFingerprintDb::survey_wifi(&mut hub, &points);
        FusionScheme::new(
            scenario.world.floorplan().clone(),
            scenario.route.start(),
            PdrConfig::default(),
            db,
            seed + 1,
        )
    }

    fn mean_error<S: LocalizationScheme>(
        scenario: &campus::Scenario,
        scheme: &mut S,
        seed: u64,
    ) -> f64 {
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(seed));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed + 1);
        let frames = hub.sample_walk(&walk, 0.5);
        let errs: Vec<f64> = frames
            .iter()
            .filter_map(|f| scheme.update(f).map(|e| e.position.distance(f.true_position)))
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    #[test]
    fn fusion_beats_plain_pdr_indoors() {
        let scenario = venues::training_office(91);
        let mut fusion = build_fusion(&scenario, 92);
        let mut pdr = PdrScheme::new(
            scenario.world.floorplan().clone(),
            scenario.route.start(),
            PdrConfig::default(),
            93,
        );
        let fusion_err = mean_error(&scenario, &mut fusion, 94);
        let pdr_err = mean_error(&scenario, &mut pdr, 94);
        assert!(
            fusion_err <= pdr_err * 1.1,
            "fusion ({fusion_err}) should not lose to PDR ({pdr_err}) indoors"
        );
        assert!(fusion_err < 5.0, "fusion office error {fusion_err}");
    }

    #[test]
    fn fusion_not_much_worse_than_pdr_on_mixed_path() {
        // Outdoors / in WiFi-poor areas the RSSI pass must degrade to a
        // no-op, keeping fusion close to plain PDR (the paper gives them
        // the same outdoor error model).
        let scenario = campus::daily_path(99);
        let mut fusion = build_fusion(&scenario, 100);
        let mut pdr = PdrScheme::new(
            scenario.world.floorplan().clone(),
            scenario.route.start(),
            PdrConfig::default(),
            101,
        );
        let fusion_err = mean_error(&scenario, &mut fusion, 102);
        let pdr_err = mean_error(&scenario, &mut pdr, 102);
        assert!(
            fusion_err <= pdr_err * 1.35 + 1.0,
            "fusion ({fusion_err}) degraded too far below PDR ({pdr_err})"
        );
    }

    #[test]
    fn fusion_always_available() {
        let scenario = campus::daily_path(95);
        let mut fusion = build_fusion(&scenario, 96);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(97));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 98);
        let frames = hub.sample_walk(&walk, 0.5);
        assert!(frames.iter().all(|f| fusion.update(f).is_some()));
    }

    #[test]
    fn foreign_scan_is_a_noop() {
        let scenario = venues::training_office(103);
        let mut fusion = build_fusion(&scenario, 104);
        // Prime with a few steps.
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(105));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 106);
        let frames = hub.sample_walk(&walk, 0.5);
        for f in frames.iter().take(20) {
            fusion.update(f);
        }
        let before = fusion.core.estimate().position;
        // A scan whose APs appear in no fingerprint cannot match anything:
        // every particle gets the uniform floor and the cloud is untouched
        // (weights renormalize to what they were).
        let foreign = WifiScan {
            readings: vec![
                (uniloc_env::ApId(9_999), -60.0),
                (uniloc_env::ApId(9_998), -65.0),
                (uniloc_env::ApId(9_997), -70.0),
            ],
        };
        fusion.rssi_reweight(&foreign);
        let after = fusion.core.estimate().position;
        assert!(
            before.distance(after) < 1e-9,
            "unmatched scans must not move the cloud ({before} -> {after})"
        );
    }

    #[test]
    fn junk_scan_can_drag_the_cloud() {
        // Quality-blindness is a *feature* of the baseline: a misleading
        // scan that matches a far fingerprint pulls the estimate away —
        // the paper's observation at the 180 m mark of the daily path.
        let scenario = venues::training_office(107);
        let mut fusion = build_fusion(&scenario, 108);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(109));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 110);
        let frames = hub.sample_walk(&walk, 0.5);
        for f in frames.iter().take(20) {
            fusion.update(f);
        }
        let before = fusion.core.estimate().position;
        // A strong scan captured at the far end of the office.
        let far = hub.scan_wifi(Point::new(50.0, 15.0));
        for _ in 0..10 {
            fusion.rssi_reweight(&far);
        }
        let after = fusion.core.estimate().position;
        assert!(
            after.distance(before) > 0.5,
            "misleading RSSIs should drag the quality-blind baseline"
        );
    }
}
