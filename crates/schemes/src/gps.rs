//! The GPS scheme: pass through reliable fixes, converted to the map frame.
//!
//! "GPS. We use the results reported from the default GPS module on
//! smartphones." A fix is used only when "the number of visible satellites
//! is larger than 4 and HDOP is less than 6", and "we convert the result of
//! GPS to the map coordinate by the public digital map information."

use crate::estimate::{LocalizationScheme, LocationEstimate, SchemeId};
use uniloc_geom::GeoFrame;
use uniloc_sensors::SensorFrame;

/// The GPS localization scheme.
///
/// # Examples
///
/// ```
/// use uniloc_env::campus;
/// use uniloc_schemes::{GpsScheme, LocalizationScheme, SchemeId};
///
/// let scenario = campus::daily_path(1);
/// let scheme = GpsScheme::new(*scenario.world.geo_frame());
/// assert_eq!(scheme.id(), SchemeId::Gps);
/// ```
#[derive(Debug, Clone)]
pub struct GpsScheme {
    frame: GeoFrame,
}

impl GpsScheme {
    /// Creates the scheme with the map's geographic frame.
    pub fn new(frame: GeoFrame) -> Self {
        GpsScheme { frame }
    }
}

impl LocalizationScheme for GpsScheme {
    fn id(&self) -> SchemeId {
        SchemeId::Gps
    }

    fn update(&mut self, frame: &SensorFrame) -> Option<LocationEstimate> {
        let fix = frame.gps?;
        if !fix.is_reliable() {
            return None;
        }
        let position = self.frame.to_local(fix.coordinate);
        // HDOP scales the expected radius; 5 m per HDOP unit is the common
        // rule of thumb for consumer receivers.
        Some(LocationEstimate::with_spread(position, 5.0 * fix.hdop))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_rng::Rng;
    use uniloc_env::{campus, GaitProfile, Walker};
    use uniloc_sensors::{DeviceProfile, SensorHub};

    #[test]
    fn produces_fixes_outdoors_only() {
        let scenario = campus::daily_path(31);
        let mut walker =
            Walker::new(GaitProfile::average(), Rng::seed_from_u64(32));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 33);
        let frames = hub.sample_walk(&walk, 0.5);
        let mut scheme = GpsScheme::new(*scenario.world.geo_frame());
        let mut deep_indoor_hits = 0usize;
        let mut outdoor_hits = 0usize;
        let mut outdoor_err = Vec::new();
        for f in &frames {
            let est = scheme.update(f);
            match scenario.world.kind_at(f.true_position) {
                uniloc_env::EnvKind::OpenSpace | uniloc_env::EnvKind::Road => {
                    if let Some(e) = est {
                        outdoor_hits += 1;
                        outdoor_err.push(e.position.distance(f.true_position));
                    }
                }
                // Deep-indoor segments must be GPS-dark; the semi-open
                // corridor legitimately gets occasional degraded fixes.
                uniloc_env::EnvKind::Office
                | uniloc_env::EnvKind::Basement
                | uniloc_env::EnvKind::CarPark => {
                    deep_indoor_hits += usize::from(est.is_some());
                }
                _ => {}
            }
        }
        assert!(outdoor_hits > 50, "GPS must deliver outdoors");
        assert!(
            deep_indoor_hits < 5,
            "GPS should not deliver deep indoors: {deep_indoor_hits}"
        );
        let mean = outdoor_err.iter().sum::<f64>() / outdoor_err.len() as f64;
        assert!((8.0..22.0).contains(&mean), "GPS mean error {mean}");
    }

    #[test]
    fn spread_follows_hdop() {
        let scenario = campus::daily_path(34);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 35);
        let p = scenario.route.point_at(300.0);
        let mut scheme = GpsScheme::new(*scenario.world.geo_frame());
        for _ in 0..20 {
            if let Some(fix) = hub.gps_fix(p) {
                let frame = SensorFrame {
                    t: 0.0,
                    true_position: p,
                    wifi: None,
                    cell: None,
                    gps: Some(fix),
                    steps: vec![],
                    landmark: None,
                    light_lux: 10_000.0,
                    magnetic_variance: 0.1,
                };
                if let Some(e) = scheme.update(&frame) {
                    assert!((e.spread.unwrap() - 5.0 * fix.hdop).abs() < 1e-12);
                }
            }
        }
    }
}
