//! Signal-space and spatial candidate indexes for the fingerprint hot
//! path.
//!
//! Two structures live here:
//!
//! * [`SignalIndex`] — an RSSI-quantized inverted index keyed by
//!   `(AP/tower id, coarse RSSI bucket)` over struct-of-arrays
//!   fingerprint slabs (a flat `Vec<f64>` RSSI matrix with parallel
//!   id/offset/position arrays). It accelerates
//!   [`FingerprintDb::match_scan`](crate::fingerprint::FingerprintDb::match_scan)
//!   by pruning to candidate fingerprints before the exact `total_cmp`
//!   ranking, and is a **pure accelerator**: for every input it returns
//!   exactly the matches (positions, distances, order, ties, NaN
//!   handling) the linear scan returns — see the fallback rule below and
//!   `tests/index_differential.rs`, which proves the equivalence
//!   property-by-property.
//! * [`SpatialGrid`] — the grid-bucketed nearest-position lookup the
//!   fusion scheme's per-particle reweight uses (formerly a private copy
//!   inside `fusion.rs`), with expanding-ring search semantics.
//!
//! # Why the indexed match is provably identical
//!
//! The RADAR distance between a scan and a fingerprint with `c ≥ 1`
//! common ids, squared gaps `Δ²` and `m` one-sided ids under penalty `P`
//! is `d = sqrt((ΣΔ² + m·P²) / (c + m))`. Each fingerprint reading is
//! indexed under `(id, floor(rssi / B))` with `B =` [`RSSI_BUCKET_DB`].
//! The fast path gathers, for every scan reading, the postings of its
//! bucket and the two adjacent buckets. A fingerprint *not* gathered
//! shares no id with the scan (distance `None`, excluded by the linear
//! scan too) or pairs every common id at a bucket gap ≥ 2, which forces
//! `|Δ| > B·(1 − δ)` for floating-point rounding `δ` on the order of
//! 1e-13; combined with the `P²` charge on one-sided ids this bounds its
//! distance strictly above `min(B·(1 − δ), |P|)`. So whenever the
//! gathered candidates already contain `k` matches with
//! `out[k-1].distance <= ACCEPT_MARGIN * min(B, P)` — and
//! `ACCEPT_MARGIN < 1 − δ` — no ungathered fingerprint can displace or
//! tie any of them, and the pruned result is byte-identical to the full
//! scan. In every other case — acceptance unmet, non-finite RSSIs in the
//! slab or the scan, non-finite penalty — the match falls back to the
//! exact shared-id candidate set: the union of *all* bucket postings for
//! the scan's ids, which is precisely the set of fingerprints the linear
//! scan could score, walked in entry order.
//!
//! Ranking reproduces the reference's *stable* `total_cmp` sort without
//! a stable sort: candidates are scored as `(entry index, distance)`
//! pairs and sorted **unstably** by `(total_cmp(distance), entry index)`.
//! That comparator is a total order with no duplicate keys (entry
//! indices are unique), so it has exactly one sorted permutation — the
//! one the stable sort produces — while `sort_unstable_by` stays
//! in-place (the stable sort allocates a merge buffer every call).
//!
//! Per-call scratch (candidate lists, stamp array, scan buffer, score
//! buffer) lives in a thread-local pool so the steady-state epoch loop
//! performs no heap allocation here. Growing the pool is one-time,
//! amortized warmup, and which epoch it lands on depends on thread
//! scheduling and process history (a resumed fleet replays on cold
//! pools), so — like the observatory's own span bookkeeping — pool
//! growth runs under [`uniloc_obs::alloc::pause`] and is never
//! attributed to the epoch that happened to trigger it. The per-epoch
//! meter thus reads the same on any thread layout, which the fleet's
//! jobs-invariance and crash-resume differential suites require.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::fingerprint::{FingerprintMatch, RssiLike};
use uniloc_geom::Point;

/// Coarse RSSI quantization width (dB) for the inverted-index bucket key.
/// Matched to the default missing-AP penalty: candidate pruning can only
/// skip fingerprints whose every shared AP is further than one bucket.
pub const RSSI_BUCKET_DB: f64 = 12.0;

/// Safety margin on the fast-path acceptance bound: strictly below
/// `1 − δ` for any floating-point rounding `δ` the bucket arithmetic can
/// introduce, so acceptance is conservative and never admits a pruned
/// result the full scan would rank differently.
const ACCEPT_MARGIN: f64 = 0.99;

/// Bucket of one RSSI reading. Non-finite readings saturate (`NaN → 0`);
/// the fast path never relies on their buckets — it is disabled for
/// non-finite data — while the shared-id fallback only needs every
/// reading to land under *some* key for its id.
fn bucket(rssi: f64) -> i64 {
    (rssi / RSSI_BUCKET_DB).floor() as i64
}

thread_local! {
    static SCRATCH: RefCell<MatchScratch> = const {
        RefCell::new(MatchScratch {
            scan_buf: Vec::new(),
            stamps: Vec::new(),
            generation: 0,
            candidates: Vec::new(),
            scored: Vec::new(),
            density_buf: Vec::new(),
        })
    };
}

/// Reusable per-thread buffers for [`SignalIndex::match_into`] and
/// [`SignalIndex::local_density`]: capacity grows under the alloc-meter
/// pause (see the module docs), after which every call is allocation-free.
struct MatchScratch {
    /// The online scan's readings as plain `(u32, f64)` pairs.
    scan_buf: Vec<(u32, f64)>,
    /// Per-entry visit stamps (generation counter) for O(1) candidate
    /// dedup without clearing between calls.
    stamps: Vec<u32>,
    generation: u32,
    /// Gathered candidate entry indices.
    candidates: Vec<u32>,
    /// Scored candidates as `(entry index, distance)` pairs.
    scored: Vec<(u32, f64)>,
    /// `(insertion order, position)` neighborhood for the density estimate.
    density_buf: Vec<(u32, Point)>,
}

impl MatchScratch {
    /// Grows every match buffer to hold a database of `n` entries and a
    /// scan of `readings` pairs, unattributed (amortized pool warmup).
    fn reserve_for_match(&mut self, n: usize, readings: usize) {
        let _pause = uniloc_obs::alloc::pause();
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.scan_buf.clear();
        self.scan_buf.reserve(readings);
        self.candidates.clear();
        self.candidates.reserve(n);
        self.scored.clear();
        self.scored.reserve(n);
    }

    /// Starts a fresh candidate generation (stamps already sized).
    fn next_generation(&mut self) -> u32 {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamps.fill(0);
            self.generation = 1;
        }
        self.generation
    }
}

/// The RSSI-quantized inverted index plus struct-of-arrays fingerprint
/// slab, built once at database construction.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalIndex {
    /// Survey position of each fingerprint, in entry order.
    positions: Vec<Point>,
    /// Reading-range offsets into `ids`/`rssis`: entry `e`'s readings are
    /// `offsets[e]..offsets[e + 1]`.
    offsets: Vec<u32>,
    /// Flat id array, parallel to `rssis`, readings in original order.
    ids: Vec<u32>,
    /// Flat RSSI matrix, parallel to `ids`.
    rssis: Vec<f64>,
    /// Sorted `(id, bucket)` keys of the inverted index.
    keys: Vec<(u32, i64)>,
    /// Posting-range offsets per key (`keys.len() + 1` entries).
    post_offsets: Vec<u32>,
    /// Entry indices per key, ascending.
    postings: Vec<u32>,
    /// Whether every slab RSSI is finite (fast-path precondition).
    finite: bool,
}

impl SignalIndex {
    /// Builds the index from `(position, scan)` entries. Deterministic:
    /// the same entries always produce the same index bytes.
    pub fn build<S: RssiLike>(entries: &[(Point, S)]) -> Self {
        let n = entries.len();
        assert!(n < u32::MAX as usize, "fingerprint database too large to index");
        let mut positions = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut ids = Vec::new();
        let mut rssis = Vec::new();
        let mut finite = true;
        let mut tagged: Vec<((u32, i64), u32)> = Vec::new();
        for (e, (p, s)) in entries.iter().enumerate() {
            positions.push(*p);
            for i in 0..s.reading_count() {
                let (id, r) = s.reading(i);
                ids.push(id);
                rssis.push(r);
                finite &= r.is_finite();
                tagged.push(((id, bucket(r)), e as u32));
            }
            offsets.push(ids.len() as u32);
        }
        tagged.sort_unstable();
        tagged.dedup();
        let mut keys = Vec::new();
        let mut post_offsets = vec![0u32];
        let mut postings = Vec::with_capacity(tagged.len());
        for (key, e) in tagged {
            if keys.last() != Some(&key) {
                keys.push(key);
                post_offsets.push(postings.len() as u32);
            }
            postings.push(e);
            *post_offsets.last_mut().expect("non-empty") = postings.len() as u32;
        }
        SignalIndex { positions, offsets, ids, rssis, keys, post_offsets, postings, finite }
    }

    /// Number of indexed fingerprints.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the index holds no fingerprints.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Exact RADAR distance between the buffered scan and slab entry `e`
    /// — the same merge, arithmetic and operation order as
    /// [`uniloc_sensors::merge_distance`] with the scan on the left.
    fn entry_distance(&self, scan: &[(u32, f64)], e: usize, missing_penalty_dbm: f64) -> Option<f64> {
        let lo = self.offsets[e] as usize;
        let hi = self.offsets[e + 1] as usize;
        let ids = &self.ids[lo..hi];
        let rssis = &self.rssis[lo..hi];
        let mut sum_sq = 0.0;
        let mut common = 0usize;
        let mut i = 0;
        let mut j = 0;
        let mut missing = 0usize;
        while i < scan.len() && j < ids.len() {
            let (ka, ra) = scan[i];
            match ka.cmp(&ids[j]) {
                std::cmp::Ordering::Equal => {
                    let rb = rssis[j];
                    sum_sq += (ra - rb) * (ra - rb);
                    common += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    missing += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    missing += 1;
                    j += 1;
                }
            }
        }
        missing += scan.len() - i + ids.len() - j;
        if common == 0 {
            return None;
        }
        sum_sq += missing as f64 * missing_penalty_dbm * missing_penalty_dbm;
        Some((sum_sq / (common + missing) as f64).sqrt())
    }

    /// Scores the gathered candidate set into `scored` and ranks it
    /// exactly like the linear reference: unstable sort on
    /// `(total_cmp(distance), entry index)` — the unique sorted order of
    /// a stable-by-distance sort over entry-ordered candidates — without
    /// the merge buffer a stable sort allocates.
    fn rank_candidates(
        &self,
        scan: &[(u32, f64)],
        candidates: &mut [u32],
        missing_penalty_dbm: f64,
        scored: &mut Vec<(u32, f64)>,
    ) {
        // Ascending entry order for cache-friendly slab walks (the final
        // order is fixed by the comparator's entry-index tiebreak anyway).
        candidates.sort_unstable();
        scored.clear();
        for &e in candidates.iter() {
            if let Some(d) = self.entry_distance(scan, e as usize, missing_penalty_dbm) {
                scored.push((e, d));
            }
        }
        scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    }

    /// Copies the `k` best scored candidates into `out` as matches.
    fn emit(&self, scored: &[(u32, f64)], k: usize, out: &mut Vec<FingerprintMatch>) {
        out.clear();
        let take = scored.len().min(k);
        if out.capacity() < take {
            // Capacity growth of a caller-recycled buffer is warmup, not
            // steady-state work: keep it out of the alloc meter so counts
            // stay scheduling-invariant.
            let _pause = uniloc_obs::alloc::pause();
            out.reserve(take - out.len());
        }
        out.extend(
            scored
                .iter()
                .take(k)
                .map(|&(e, d)| FingerprintMatch { position: self.positions[e as usize], distance: d }),
        );
    }

    /// The indexed equivalent of the linear `match_scan`: fills `out`
    /// with the `k` best matches, byte-identical to scoring every entry.
    pub fn match_into<S: RssiLike>(
        &self,
        scan: &S,
        k: usize,
        missing_penalty_dbm: f64,
        out: &mut Vec<FingerprintMatch>,
    ) {
        out.clear();
        if scan.no_signal() || k == 0 || self.is_empty() {
            return;
        }
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.reserve_for_match(self.len(), scan.reading_count());
            let mut scan_finite = true;
            for i in 0..scan.reading_count() {
                let (id, r) = scan.reading(i);
                scan_finite &= r.is_finite();
                scratch.scan_buf.push((id, r));
            }

            // Fast path: bucket-windowed candidates. Sound only over
            // finite data (non-finite RSSIs or penalties break the gap
            // bound — and can surface sign-ambiguous NaN distances whose
            // total_cmp rank the bound cannot cover).
            if self.finite && scan_finite && missing_penalty_dbm.is_finite() {
                let generation = scratch.next_generation();
                let MatchScratch { scan_buf, stamps, candidates, scored, .. } = scratch;
                candidates.clear();
                for &(id, r) in scan_buf.iter() {
                    let b = bucket(r);
                    for bb in [b.saturating_sub(1), b, b.saturating_add(1)] {
                        if let Ok(ki) = self.keys.binary_search(&(id, bb)) {
                            let lo = self.post_offsets[ki] as usize;
                            let hi = self.post_offsets[ki + 1] as usize;
                            for &e in &self.postings[lo..hi] {
                                if stamps[e as usize] != generation {
                                    stamps[e as usize] = generation;
                                    candidates.push(e);
                                }
                            }
                        }
                    }
                }
                self.rank_candidates(scan_buf, candidates, missing_penalty_dbm, scored);
                let accept = ACCEPT_MARGIN * RSSI_BUCKET_DB.min(missing_penalty_dbm);
                if scored.len() >= k && scored[k - 1].1 <= accept {
                    self.emit(scored, k, out);
                    return;
                }
            }

            // Exact fallback: every fingerprint sharing at least one id
            // with the scan (the only ones the linear scan can score).
            let generation = scratch.next_generation();
            let MatchScratch { scan_buf, stamps, candidates, scored, .. } = scratch;
            candidates.clear();
            for &(id, _) in scan_buf.iter() {
                let lo = self.keys.partition_point(|key| key.0 < id);
                let hi = self.keys.partition_point(|key| key.0 <= id);
                for ki in lo..hi {
                    let plo = self.post_offsets[ki] as usize;
                    let phi = self.post_offsets[ki + 1] as usize;
                    for &e in &self.postings[plo..phi] {
                        if stamps[e as usize] != generation {
                            stamps[e as usize] = generation;
                            candidates.push(e);
                        }
                    }
                }
            }
            self.rank_candidates(scan_buf, candidates, missing_penalty_dbm, scored);
            self.emit(scored, k, out);
        });
    }

    /// Mean nearest-neighbor spacing of fingerprints within `radius` of
    /// `p` — identical to the pre-index linear implementation, with the
    /// neighborhood buffer pooled per thread.
    pub fn local_density(&self, p: Point, radius: f64) -> Option<f64> {
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let nearby = &mut scratch.density_buf;
            {
                let _pause = uniloc_obs::alloc::pause();
                nearby.clear();
                nearby.reserve(self.len());
            }
            for q in &self.positions {
                if q.distance(p) <= radius {
                    nearby.push((nearby.len() as u32, *q));
                }
            }
            if nearby.len() < 2 {
                return None;
            }
            // Mean nearest-neighbor distance. For dense surveys the full
            // O(n^2) pass is wasteful; probing the K fingerprints closest
            // to `p` against the whole neighborhood gives the same
            // estimate (the local grid is homogeneous) at O(K*n).
            //
            // The insertion-order tag makes the unstable sort reproduce
            // the reference's stable order exactly (unique keys), so the
            // probe set is identical under tied distances.
            const PROBES: usize = 40;
            nearby.sort_unstable_by(|a, b| {
                a.1.distance_sq(p).total_cmp(&b.1.distance_sq(p)).then(a.0.cmp(&b.0))
            });
            let probes = nearby.len().min(PROBES);
            let mut total = 0.0;
            for i in 0..probes {
                let a = nearby[i].1;
                let mut best = f64::INFINITY;
                for (j, b) in nearby.iter().enumerate() {
                    if i != j {
                        best = best.min(a.distance_sq(b.1));
                    }
                }
                total += best.sqrt();
            }
            Some(total / probes as f64)
        })
    }
}

/// Spatial hash over positions for O(1) nearest lookups (the fusion
/// scheme's per-particle inner loop would otherwise be quadratic).
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<usize>>,
    positions: Vec<Point>,
}

impl SpatialGrid {
    /// Buckets the positions into a grid of `cell`-sized squares.
    pub fn build(positions: Vec<Point>, cell: f64) -> Self {
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            buckets
                .entry(((p.x / cell).floor() as i64, (p.y / cell).floor() as i64))
                .or_default()
                .push(i);
        }
        SpatialGrid { cell, buckets, positions }
    }

    /// Index of the position nearest to `p`, searching expanding rings
    /// (up to 3 cells; beyond that no fingerprint can constrain anything).
    pub fn nearest(&self, p: Point) -> Option<usize> {
        let cx = (p.x / self.cell).floor() as i64;
        let cy = (p.y / self.cell).floor() as i64;
        let mut best: Option<(usize, f64)> = None;
        for ring in 0..=3i64 {
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    if dx.abs() != ring && dy.abs() != ring {
                        continue; // only the ring boundary
                    }
                    if let Some(ids) = self.buckets.get(&(cx + dx, cy + dy)) {
                        for &i in ids {
                            let d = self.positions[i].distance_sq(p);
                            if best.is_none_or(|(_, bd)| d < bd) {
                                best = Some((i, d));
                            }
                        }
                    }
                }
            }
            if let Some((_, d)) = best {
                if d.sqrt() < (ring as f64) * self.cell {
                    break;
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_env::ApId;
    use uniloc_sensors::WifiScan;

    fn scan(pairs: &[(u32, f64)]) -> WifiScan {
        WifiScan { readings: pairs.iter().map(|&(id, r)| (ApId(id), r)).collect() }
    }

    fn entries() -> Vec<(Point, WifiScan)> {
        (0..30)
            .map(|i| {
                (
                    Point::new(i as f64 * 2.0, 0.0),
                    scan(&[(0, -40.0 - i as f64 * 2.0), (1, -50.0 - i as f64)]),
                )
            })
            .collect()
    }

    #[test]
    fn build_is_deterministic() {
        let e = entries();
        assert_eq!(SignalIndex::build(&e), SignalIndex::build(&e));
    }

    #[test]
    fn match_into_equals_linear_scoring() {
        let e = entries();
        let idx = SignalIndex::build(&e);
        let online = scan(&[(0, -52.0), (1, -55.0)]);
        let mut out = Vec::new();
        idx.match_into(&online, 3, 12.0, &mut out);
        let mut linear: Vec<FingerprintMatch> = e
            .iter()
            .filter_map(|(p, fp)| {
                crate::fingerprint::RssiLike::fingerprint_distance(&online, fp, 12.0)
                    .map(|d| FingerprintMatch { position: *p, distance: d })
            })
            .collect();
        linear.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        linear.truncate(3);
        assert_eq!(out, linear);
    }

    #[test]
    fn non_finite_readings_disable_the_fast_path_but_stay_exact() {
        let mut e = entries();
        e.push((Point::new(99.0, 0.0), scan(&[(0, f64::NAN), (1, -55.0)])));
        let idx = SignalIndex::build(&e);
        let online = scan(&[(1, -55.0)]);
        let mut out = Vec::new();
        idx.match_into(&online, 5, 12.0, &mut out);
        let mut linear: Vec<FingerprintMatch> = e
            .iter()
            .filter_map(|(p, fp)| {
                crate::fingerprint::RssiLike::fingerprint_distance(&online, fp, 12.0)
                    .map(|d| FingerprintMatch { position: *p, distance: d })
            })
            .collect();
        linear.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        linear.truncate(5);
        assert_eq!(out.len(), linear.len());
        for (a, b) in out.iter().zip(&linear) {
            assert_eq!(a.position, b.position);
            assert!(a.distance == b.distance || (a.distance.is_nan() && b.distance.is_nan()));
        }
    }

    #[test]
    fn empty_scan_and_zero_k_match_nothing() {
        let idx = SignalIndex::build(&entries());
        let mut out = vec![FingerprintMatch { position: Point::origin(), distance: 0.0 }];
        idx.match_into(&WifiScan::default(), 3, 12.0, &mut out);
        assert!(out.is_empty());
        idx.match_into(&scan(&[(0, -50.0)]), 0, 12.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn grid_nearest_matches_brute_force() {
        let positions: Vec<Point> = (0..50)
            .map(|i| Point::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 4.0))
            .collect();
        let grid = SpatialGrid::build(positions.clone(), 5.0);
        for qx in 0..12 {
            for qy in 0..8 {
                let q = Point::new(qx as f64 * 2.7 - 1.0, qy as f64 * 3.1 - 1.0);
                let brute = positions
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.distance_sq(q).total_cmp(&b.distance_sq(q)))
                    .map(|(i, _)| i)
                    .unwrap();
                let got = grid.nearest(q).unwrap();
                assert_eq!(
                    positions[got].distance_sq(q),
                    positions[brute].distance_sq(q),
                    "query {q}"
                );
            }
        }
    }

    #[test]
    fn grid_expands_rings_until_a_hit() {
        // One far-away position: the origin query only finds it on an
        // outer ring, exercising the ring expansion rather than the
        // center-cell shortcut.
        let grid = SpatialGrid::build(vec![Point::new(14.0, 0.0)], 5.0);
        assert_eq!(grid.nearest(Point::origin()), Some(0));
        // Beyond 3 rings nothing is found.
        let far = SpatialGrid::build(vec![Point::new(100.0, 100.0)], 5.0);
        assert_eq!(far.nearest(Point::origin()), None);
        // Empty grid.
        assert_eq!(SpatialGrid::build(Vec::new(), 5.0).nearest(Point::origin()), None);
    }
}
