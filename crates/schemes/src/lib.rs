//! The five localization schemes UniLoc aggregates (Section II of the
//! paper), each implemented as a black box over [`SensorFrame`]s:
//!
//! | Scheme | Paper reference | Module |
//! |---|---|---|
//! | GPS | phone GPS module | [`gps`] |
//! | WiFi RSSI fingerprinting | RADAR [1] | [`wifi`] |
//! | Cellular RSSI fingerprinting | Otsason et al. [22] | [`cell`] |
//! | Motion-based PDR | Li et al. [7] + UnLoc [12] landmarks | [`pdr`] |
//! | Sensor-data fusion | Travi-Navi [11] | [`fusion`] |
//!
//! All schemes implement [`LocalizationScheme`]; UniLoc "without going into
//! the details of individual schemes, only processes the final outputs".
//! The [`oracle`] module provides the ground-truth-assisted single-selection
//! baseline the paper plots as "Oracle".
//!
//! [`SensorFrame`]: uniloc_sensors::SensorFrame

pub mod cell;
pub mod crowdsource;
pub mod estimate;
pub mod fingerprint;
pub mod fusion;
pub mod gps;
pub mod horus;
pub mod index;
pub mod oracle;
pub mod pdr;
pub mod wifi;

pub use cell::CellFingerprintScheme;
pub use crowdsource::RadioMapBuilder;
pub use estimate::{LocalizationScheme, LocationEstimate, SchemeId};
pub use horus::{HorusScheme, ProbFingerprintDb};
pub use fingerprint::{CellFingerprintDb, FingerprintMatch, WifiFingerprintDb};
pub use index::{SignalIndex, SpatialGrid};
pub use fusion::FusionScheme;
pub use gps::GpsScheme;
pub use oracle::Oracle;
pub use pdr::{PdrConfig, PdrScheme};
pub use wifi::WifiFingerprintScheme;
