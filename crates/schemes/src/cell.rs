//! The cellular RSSI fingerprinting scheme (Otsason et al. [22]).
//!
//! "We use the same fingerprinting algorithm of RADAR on cellular GSM
//! signals." Macro towers are far away and few, so accuracy is coarse —
//! but cellular reaches places WiFi and GPS do not (the paper's basement
//! segment is where this scheme wins 11.4% of all locations).

use crate::estimate::{LocalizationScheme, LocationEstimate, SchemeId};
use crate::fingerprint::CellFingerprintDb;
use uniloc_sensors::SensorFrame;

/// Number of top candidates for the spread statistic (k = 3, as for WiFi).
pub const TOP_K: usize = 3;

/// The cellular fingerprinting scheme.
#[derive(Debug, Clone)]
pub struct CellFingerprintScheme {
    db: CellFingerprintDb,
    last_matches: Vec<crate::fingerprint::FingerprintMatch>,
}

impl CellFingerprintScheme {
    /// Creates the scheme over an offline cellular fingerprint database.
    pub fn new(db: CellFingerprintDb) -> Self {
        CellFingerprintScheme { db, last_matches: Vec::new() }
    }

    /// The offline database (shared with UniLoc's feature extractor).
    pub fn db(&self) -> &CellFingerprintDb {
        &self.db
    }
}

impl LocalizationScheme for CellFingerprintScheme {
    fn id(&self) -> SchemeId {
        SchemeId::Cellular
    }

    fn update(&mut self, frame: &SensorFrame) -> Option<LocationEstimate> {
        self.last_matches.clear();
        let scan = frame.cell.as_ref()?;
        if scan.is_empty() {
            return None;
        }
        self.db.match_scan_into(scan, TOP_K, &mut self.last_matches);
        let best = *self.last_matches.first()?;
        let spread = if self.last_matches.len() > 1 {
            Some(
                self.last_matches
                    .iter()
                    .skip(1)
                    .map(|c| c.position.distance(best.position))
                    .sum::<f64>()
                    / (self.last_matches.len() - 1) as f64,
            )
        } else {
            None
        };
        Some(LocationEstimate { position: best.position, spread })
    }

    fn posterior(&self) -> Option<Vec<(uniloc_geom::Point, f64)>> {
        if self.last_matches.is_empty() {
            return None;
        }
        let d0 = self.last_matches[0].distance;
        Some(
            self.last_matches
                .iter()
                .map(|m| (m.position, (-(m.distance - d0) / 3.0).exp()))
                .collect(),
        )
    }

    fn posterior_mean(&self) -> Option<uniloc_geom::Point> {
        if self.last_matches.is_empty() {
            return None;
        }
        let d0 = self.last_matches[0].distance;
        let weight = |m: &crate::fingerprint::FingerprintMatch| (-(m.distance - d0) / 3.0).exp();
        let w: f64 = self.last_matches.iter().map(weight).sum();
        if w > 0.0 {
            let x = self.last_matches.iter().map(|m| weight(m) * m.position.x).sum::<f64>() / w;
            let y = self.last_matches.iter().map(|m| weight(m) * m.position.y).sum::<f64>() / w;
            Some(uniloc_geom::Point::new(x, y))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_rng::Rng;
    use uniloc_env::{campus, EnvKind, GaitProfile, Walker};
    use uniloc_sensors::{DeviceProfile, SensorHub};

    #[test]
    fn works_in_basement_where_wifi_dies() {
        let scenario = campus::daily_path(61);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 62);
        let points = scenario.survey_points(3.0, 12.0);
        let db = CellFingerprintDb::survey_cell(&mut hub, &points);
        let mut scheme = CellFingerprintScheme::new(db);

        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(63));
        let walk = walker.walk(&scenario.route);
        let mut run_hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 64);
        let frames = run_hub.sample_walk(&walk, 0.5);

        let mut basement_avail = 0usize;
        let mut basement_total = 0usize;
        let mut errors = Vec::new();
        for f in &frames {
            if scenario.world.kind_at(f.true_position) == EnvKind::Basement {
                basement_total += 1;
                if let Some(e) = scheme.update(f) {
                    basement_avail += 1;
                    errors.push(e.position.distance(f.true_position));
                }
            }
        }
        assert!(basement_total > 0);
        assert!(
            basement_avail as f64 > 0.5 * basement_total as f64,
            "cellular availability in basement {basement_avail}/{basement_total}"
        );
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        // Coarse but bounded (the paper's cellular errors are tens of m).
        assert!(mean < 80.0, "basement cellular mean error {mean}");
    }

    #[test]
    fn coarser_than_wifi_overall() {
        let scenario = uniloc_env::venues::training_office(65);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 66);
        let points = scenario.survey_points(3.0, 12.0);
        let cell_db = CellFingerprintDb::survey_cell(&mut hub, &points);
        let wifi_db = crate::fingerprint::WifiFingerprintDb::survey_wifi(&mut hub, &points);
        let mut cell = CellFingerprintScheme::new(cell_db);
        let mut wifi = crate::wifi::WifiFingerprintScheme::new(wifi_db);

        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(67));
        let walk = walker.walk(&scenario.route);
        let mut run_hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 68);
        let frames = run_hub.sample_walk(&walk, 0.5);
        let mut cell_err = Vec::new();
        let mut wifi_err = Vec::new();
        for f in &frames {
            if let Some(e) = cell.update(f) {
                cell_err.push(e.position.distance(f.true_position));
            }
            if let Some(e) = wifi.update(f) {
                wifi_err.push(e.position.distance(f.true_position));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&cell_err) > mean(&wifi_err),
            "cellular ({}) should be coarser than WiFi ({})",
            mean(&cell_err),
            mean(&wifi_err)
        );
    }

    #[test]
    fn empty_scan_yields_none() {
        let scenario = campus::daily_path(69);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 70);
        let db = CellFingerprintDb::survey_cell(&mut hub, &scenario.survey_points(3.0, 12.0));
        let mut scheme = CellFingerprintScheme::new(db);
        let frame = SensorFrame {
            t: 0.0,
            true_position: uniloc_geom::Point::origin(),
            wifi: None,
            cell: Some(uniloc_sensors::CellScan::default()),
            gps: None,
            steps: vec![],
            landmark: None,
            light_lux: 100.0,
            magnetic_variance: 0.5,
        };
        assert!(scheme.update(&frame).is_none());
    }
}
