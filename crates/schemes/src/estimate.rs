//! The black-box scheme interface and its output type.

use uniloc_geom::Point;
use uniloc_sensors::SensorFrame;

/// Identifies one of the five built-in schemes (and leaves room for
/// user-integrated ones — UniLoc is "not constrained to any specific
/// localization schemes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum SchemeId {
    /// Phone GPS module.
    Gps,
    /// WiFi RSSI fingerprinting (RADAR).
    Wifi,
    /// Cellular RSSI fingerprinting.
    Cellular,
    /// Motion-based pedestrian dead reckoning.
    Motion,
    /// WiFi + PDR sensor fusion (Travi-Navi).
    Fusion,
    /// A scheme integrated by a library user.
    Custom(u16),
}

impl SchemeId {
    /// The five built-in schemes, in the paper's order.
    pub const BUILTIN: [SchemeId; 5] = [
        SchemeId::Gps,
        SchemeId::Wifi,
        SchemeId::Cellular,
        SchemeId::Motion,
        SchemeId::Fusion,
    ];
}

impl std::fmt::Display for SchemeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeId::Gps => f.write_str("gps"),
            SchemeId::Wifi => f.write_str("wifi"),
            SchemeId::Cellular => f.write_str("cellular"),
            SchemeId::Motion => f.write_str("motion"),
            SchemeId::Fusion => f.write_str("fusion"),
            SchemeId::Custom(n) => write!(f, "custom{n}"),
        }
    }
}

/// One scheme's output for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationEstimate {
    /// Estimated position in map coordinates (GPS results are converted
    /// from the geographic frame before reaching here).
    pub position: Point,
    /// The scheme's own spread/uncertainty statistic in meters (particle
    /// cloud deviation, HDOP-derived radius, candidate scatter), when it
    /// has one. UniLoc does **not** rely on this — its confidence comes
    /// from the trained error models — but exposes it for diagnostics.
    pub spread: Option<f64>,
}

impl LocationEstimate {
    /// An estimate with no spread information.
    pub fn at(position: Point) -> Self {
        LocationEstimate { position, spread: None }
    }

    /// An estimate with a spread statistic.
    pub fn with_spread(position: Point, spread: f64) -> Self {
        LocationEstimate { position, spread: Some(spread) }
    }
}

/// A localization scheme as UniLoc sees it: a black box consuming sensor
/// frames and emitting location estimates.
///
/// Returning `None` means the scheme is unavailable this epoch (no GPS fix,
/// no audible APs, ...) — UniLoc then "temporarily exclude[s]" it "by simply
/// setting its confidence as zero".
///
/// `Send` is a supertrait: under the fleet scheduler a session (and every
/// scheme inside it) migrates between worker threads across rounds.
pub trait LocalizationScheme: Send {
    /// Which scheme this is.
    fn id(&self) -> SchemeId;

    /// Human-readable name (defaults to the id).
    fn name(&self) -> String {
        self.id().to_string()
    }

    /// Consumes one epoch of sensor data and produces an estimate if the
    /// scheme is currently available.
    fn update(&mut self, frame: &SensorFrame) -> Option<LocationEstimate>;

    /// The scheme's posterior over locations for its *latest* estimate, as
    /// weighted candidates — `P(l = l_i | M_n, s_t)` in the paper's Eq. 3.
    /// Schemes that only produce a point (like GPS) return `None`; the
    /// ensemble then treats the estimate as a point mass. Weights need not
    /// be normalized.
    fn posterior(&self) -> Option<Vec<(Point, f64)>> {
        None
    }

    /// The weighted mean of [`posterior`](Self::posterior), or `None` when
    /// there is no posterior (or its total weight is not positive). The
    /// ensemble consumes this instead of materializing the candidate list
    /// every epoch; schemes that can compute the mean without building the
    /// list override it (the default allocates via `posterior()`).
    ///
    /// Overrides must be *bit-identical* to this default: sum the weights,
    /// then the weighted x's, then the weighted y's, in candidate order.
    fn posterior_mean(&self) -> Option<Point> {
        let cand = self.posterior()?;
        let w: f64 = cand.iter().map(|(_, w)| w).sum();
        if w > 0.0 {
            let x = cand.iter().map(|(p, cw)| cw * p.x).sum::<f64>() / w;
            let y = cand.iter().map(|(p, cw)| cw * p.y).sum::<f64>() / w;
            Some(Point::new(x, y))
        } else {
            None
        }
    }

    /// Resets internal state (new walk).
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_id_display() {
        assert_eq!(SchemeId::Gps.to_string(), "gps");
        assert_eq!(SchemeId::Fusion.to_string(), "fusion");
        assert_eq!(SchemeId::Custom(3).to_string(), "custom3");
    }

    #[test]
    fn builtin_lists_all_five() {
        assert_eq!(SchemeId::BUILTIN.len(), 5);
        let mut v = SchemeId::BUILTIN.to_vec();
        v.dedup();
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn estimate_constructors() {
        let p = Point::new(1.0, 2.0);
        assert_eq!(LocationEstimate::at(p).spread, None);
        assert_eq!(LocationEstimate::with_spread(p, 3.0).spread, Some(3.0));
    }
}

/// `SchemeId` serializes like an externally tagged serde enum: built-in
/// variants as their name string, `Custom(n)` as `{"Custom": n}`.
impl uniloc_stats::ToJson for SchemeId {
    fn to_json(&self) -> uniloc_stats::Json {
        use uniloc_stats::Json;
        match self {
            SchemeId::Custom(n) => {
                Json::Obj(vec![("Custom".to_owned(), Json::Int(i64::from(*n)))])
            }
            SchemeId::Gps => Json::Str("Gps".to_owned()),
            SchemeId::Wifi => Json::Str("Wifi".to_owned()),
            SchemeId::Cellular => Json::Str("Cellular".to_owned()),
            SchemeId::Motion => Json::Str("Motion".to_owned()),
            SchemeId::Fusion => Json::Str("Fusion".to_owned()),
        }
    }
}

impl uniloc_stats::FromJson for SchemeId {
    fn from_json(json: &uniloc_stats::Json) -> Result<Self, uniloc_stats::JsonError> {
        use uniloc_stats::JsonError;
        if let Some(name) = json.as_str() {
            return match name {
                "Gps" => Ok(SchemeId::Gps),
                "Wifi" => Ok(SchemeId::Wifi),
                "Cellular" => Ok(SchemeId::Cellular),
                "Motion" => Ok(SchemeId::Motion),
                "Fusion" => Ok(SchemeId::Fusion),
                other => Err(JsonError::new(format!("unknown SchemeId `{other}`"))),
            };
        }
        match json.get("Custom") {
            Some(n) => uniloc_stats::FromJson::from_json(n).map(SchemeId::Custom),
            None => Err(JsonError::new("expected SchemeId string or Custom object")),
        }
    }
}

uniloc_stats::impl_json_struct!(LocationEstimate { position, spread });
