//! The flight recorder: a bounded ring of recent trace activity that dumps
//! a byte-stable JSON postmortem when the pipeline hits an anomaly.
//!
//! Three trigger classes matter for UniLoc (see `DESIGN.md` §7c): a
//! calibration drift alarm (an error model has gone stale, see
//! [`crate::calib`]), a scheme unavailable for N consecutive epochs (a
//! sensing modality silently died), and a non-finite estimate (numerical
//! corruption in the fusion math). On any of them the recorder freezes its
//! window — the last ring-capacity trace events plus counter deltas since
//! the previous dump and current gauge values — into one `"kind":"flight"`
//! JSON line on the metrics sidecar, where `uniloc inspect-flight` finds
//! it next to the ordinary metric lines.
//!
//! The recorder is a passive [`Subscriber`]: install it in the dispatcher
//! chain and every dispatched event lands in its ring. Triggering reads
//! observability state only (ring, metrics registry, clock) and writes
//! only the sidecar, so pipeline output is untouched — and under a
//! [`VirtualClock`](crate::clock::VirtualClock) the dump itself is
//! byte-stable across same-seed runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::metrics::global_metrics;
use crate::trace::{FieldValue, JsonlExporter, RingCollector, Subscriber, TraceEvent, TraceLevel};
use uniloc_stats::json::{Json, ToJson};

/// Default ring capacity: enough for several epochs of span-level detail.
pub const DEFAULT_RING_CAPACITY: usize = 128;

/// Default consecutive-unavailable-epoch count that trips a dump.
pub const DEFAULT_UNAVAILABLE_THRESHOLD: u64 = 25;

/// Default cap on dumps per recorder *arming*: postmortems are for the
/// first few anomalies; a persistently sick run would otherwise flood the
/// sidecar. The cap is not meant to span unrelated runs in one process —
/// a fleet run calls [`FlightRecorder::rearm_dumps`] on its process-wide
/// recorder up front so an earlier run's dumps don't starve it, and every
/// suppressed postmortem is counted in the `flight.dropped` metric rather
/// than vanishing.
pub const DEFAULT_MAX_DUMPS: u64 = 16;

/// Per-scheme availability streak state.
#[derive(Debug, Default)]
struct Streak {
    consecutive_unavailable: u64,
    tripped: bool,
}

/// The flight recorder. One lives per process (see [`global_flight`]);
/// private instances serve tests.
pub struct FlightRecorder {
    ring: RingCollector,
    sink: RwLock<Option<Arc<JsonlExporter>>>,
    unavailable_threshold: AtomicU64,
    max_dumps: AtomicU64,
    dumps: AtomicU64,
    disabled: AtomicBool,
    streaks: Mutex<BTreeMap<String, Streak>>,
    /// Counter values at the previous dump (or reset); dumps report the
    /// delta since then so consecutive postmortems don't repeat totals.
    baseline: Mutex<BTreeMap<String, u64>>,
}

impl FlightRecorder {
    /// Creates a recorder whose ring holds `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: RingCollector::new(capacity),
            sink: RwLock::new(None),
            unavailable_threshold: AtomicU64::new(DEFAULT_UNAVAILABLE_THRESHOLD),
            max_dumps: AtomicU64::new(DEFAULT_MAX_DUMPS),
            dumps: AtomicU64::new(0),
            disabled: AtomicBool::new(false),
            streaks: Mutex::new(BTreeMap::new()),
            baseline: Mutex::new(BTreeMap::new()),
        }
    }

    /// Installs (or removes, with `None`) the postmortem sink. Dumps with
    /// no sink still count and still emit the `flight.dump` warn event.
    pub fn set_sink(&self, sink: Option<Arc<JsonlExporter>>) {
        *self.sink.write().expect("flight sink lock") = sink;
    }

    /// Sets the consecutive-unavailable-epoch count that trips a dump.
    pub fn set_unavailable_threshold(&self, epochs: u64) {
        self.unavailable_threshold.store(epochs.max(1), Ordering::Relaxed);
    }

    /// Sets the per-process dump cap.
    pub fn set_max_dumps(&self, max: u64) {
        self.max_dumps.store(max, Ordering::Relaxed);
    }

    /// Number of postmortems dumped so far.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Disables (or re-enables) the recorder entirely: triggers,
    /// availability streaks and ring writes all become no-ops. This is the
    /// obs-stub mode's switch — it measures the layer's cost without
    /// changing any pipeline behavior.
    pub fn set_disabled(&self, disabled: bool) {
        self.disabled.store(disabled, Ordering::Relaxed);
    }

    /// Re-arms only the dump budget, leaving the ring, streaks and counter
    /// baseline intact. A fleet run calls this up front so postmortem
    /// budget consumed by earlier runs in the same process (or an earlier
    /// fleet round) doesn't silently starve later sessions' dumps — the
    /// cap is per-run, not per-process.
    pub fn rearm_dumps(&self) {
        self.dumps.store(0, Ordering::Relaxed);
    }

    /// Records one epoch of availability for `scheme`. Returns `true`
    /// exactly when the scheme's unavailable streak reaches the threshold
    /// (once per streak — the caller should then [`trigger`](Self::trigger)
    /// a `scheme_unavailable` dump). An available epoch re-arms the trip.
    pub fn note_availability(&self, scheme: &str, available: bool) -> bool {
        if self.disabled.load(Ordering::Relaxed) {
            return false;
        }
        let mut streaks = self.streaks.lock().expect("flight streak lock");
        let s = streaks.entry(scheme.to_owned()).or_default();
        if available {
            s.consecutive_unavailable = 0;
            s.tripped = false;
            return false;
        }
        s.consecutive_unavailable += 1;
        if !s.tripped
            && s.consecutive_unavailable >= self.unavailable_threshold.load(Ordering::Relaxed)
        {
            s.tripped = true;
            return true;
        }
        false
    }

    /// Freezes the current window into a postmortem: writes one
    /// `"kind":"flight"` JSON line to the sink, bumps `flight.dumps`, and
    /// emits a `flight.dump` warn event. Returns `false` when the dump cap
    /// suppressed it — `flight.dumps_suppressed` and `flight.dropped` both
    /// count those (`dropped` is the fleet health plane's loss metric;
    /// `dumps_suppressed` stays for sidecar compatibility).
    pub fn trigger(&self, reason: &str, fields: Vec<(String, FieldValue)>) -> bool {
        if self.disabled.load(Ordering::Relaxed) {
            return false;
        }
        if self.dumps.load(Ordering::Relaxed) >= self.max_dumps.load(Ordering::Relaxed) {
            global_metrics().counter("flight.dumps_suppressed").inc();
            global_metrics().counter("flight.dropped").inc();
            return false;
        }
        let seq = self.dumps.fetch_add(1, Ordering::Relaxed);

        let snap = global_metrics().snapshot();
        let mut baseline = self.baseline.lock().expect("flight baseline lock");
        let counters_delta: Vec<Json> = snap
            .counters
            .iter()
            .filter_map(|(name, v)| {
                let delta = v.saturating_sub(baseline.get(name).copied().unwrap_or(0));
                (delta > 0).then(|| Json::Arr(vec![Json::Str(name.clone()), delta.to_json()]))
            })
            .collect();
        *baseline = snap.counters.iter().cloned().collect();
        drop(baseline);

        let events: Vec<Json> = self.ring.events().iter().map(TraceEvent::to_json).collect();
        let doc = Json::Obj(vec![
            ("kind".to_owned(), Json::Str("flight".to_owned())),
            ("seq".to_owned(), seq.to_json()),
            ("reason".to_owned(), Json::Str(reason.to_owned())),
            ("t_ns".to_owned(), crate::trace::global().now_ns().to_json()),
            (
                "fields".to_owned(),
                Json::Obj(fields.iter().map(|(k, v)| (k.clone(), v.to_json())).collect()),
            ),
            ("ring_dropped".to_owned(), self.ring.dropped().to_json()),
            ("events".to_owned(), Json::Arr(events)),
            ("counters_delta".to_owned(), Json::Arr(counters_delta)),
            (
                "gauges".to_owned(),
                Json::Arr(
                    snap.gauges
                        .iter()
                        .map(|(name, v)| {
                            Json::Arr(vec![Json::Str(name.clone()), v.to_json()])
                        })
                        .collect(),
                ),
            ),
        ]);
        if let Some(sink) = self.sink.read().expect("flight sink lock").as_ref() {
            sink.write_json(&doc);
            sink.flush();
        }
        global_metrics().counter("flight.dumps").inc();
        let mut event_fields = vec![
            ("reason".to_owned(), FieldValue::Str(reason.to_owned())),
            ("seq".to_owned(), FieldValue::Int(seq as i64)),
        ];
        event_fields.extend(fields);
        crate::trace::global().event(TraceLevel::Warn, "flight.dump", event_fields);
        true
    }

    /// Clears every buffer and arms the recorder afresh (test isolation /
    /// back-to-back runs in one process).
    pub fn reset(&self) {
        self.ring.reset();
        self.streaks.lock().expect("flight streak lock").clear();
        self.baseline.lock().expect("flight baseline lock").clear();
        self.dumps.store(0, Ordering::Relaxed);
    }
}

impl Subscriber for FlightRecorder {
    fn event(&self, event: &TraceEvent) {
        if self.disabled.load(Ordering::Relaxed) {
            return;
        }
        self.ring.event(event);
    }
}

/// The flight recorder anomaly triggers should reach: the current
/// thread's [`ObsSession`](crate::session::ObsSession)'s recorder when one
/// is installed, otherwise the process-wide recorder (install that one in
/// the dispatcher's subscriber chain and wire its sink to the metrics
/// exporter).
pub fn global_flight() -> Arc<FlightRecorder> {
    if let Some(session) = crate::session::current() {
        return Arc::clone(&session.flight);
    }
    process_flight()
}

/// The process-wide flight recorder, bypassing any installed session.
pub fn process_flight() -> Arc<FlightRecorder> {
    static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(FlightRecorder::new(DEFAULT_RING_CAPACITY))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    /// A `Write` that appends into a shared buffer (exporters take
    /// ownership of their writer).
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sink() -> (Arc<JsonlExporter>, Arc<Mutex<Vec<u8>>>) {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let exporter = Arc::new(JsonlExporter::new(Box::new(SharedBuf(Arc::clone(&buf)))));
        (exporter, buf)
    }

    fn event(name: &str, t_ns: u64) -> TraceEvent {
        TraceEvent {
            level: TraceLevel::Debug,
            name: name.to_owned(),
            t_ns,
            duration_ns: None,
            fields: vec![],
        }
    }

    #[test]
    fn dump_reflects_exactly_the_last_n_window() {
        let fr = FlightRecorder::new(4);
        let (exporter, buf) = sink();
        fr.set_sink(Some(exporter));
        for i in 0..10u64 {
            fr.event(&event(&format!("e{i}"), i));
        }
        assert!(fr.trigger("test_window", vec![]));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let doc = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str().unwrap(), "flight");
        assert_eq!(doc.get("reason").unwrap().as_str().unwrap(), "test_window");
        let names: Vec<&str> = doc
            .get("events")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        // Exactly the last 4 of the 10 events, oldest first.
        assert_eq!(names, ["e6", "e7", "e8", "e9"]);
        assert_eq!(doc.get("ring_dropped").unwrap().as_i64().unwrap(), 6);
    }

    #[test]
    fn availability_streak_trips_once_and_rearms() {
        let fr = FlightRecorder::new(4);
        fr.set_unavailable_threshold(3);
        assert!(!fr.note_availability("gps", false));
        assert!(!fr.note_availability("gps", false));
        assert!(fr.note_availability("gps", false), "third epoch trips");
        assert!(!fr.note_availability("gps", false), "already tripped");
        assert!(!fr.note_availability("gps", true), "recovery re-arms");
        assert!(!fr.note_availability("gps", false));
        assert!(!fr.note_availability("gps", false));
        assert!(fr.note_availability("gps", false), "fresh streak trips again");
        // Independent schemes keep independent streaks.
        assert!(!fr.note_availability("wifi", false));
    }

    #[test]
    fn dump_cap_suppresses_floods() {
        let fr = FlightRecorder::new(4);
        fr.set_max_dumps(2);
        assert!(fr.trigger("a", vec![]));
        assert!(fr.trigger("b", vec![]));
        assert!(!fr.trigger("c", vec![]), "over the cap");
        assert_eq!(fr.dumps(), 2);
    }

    #[test]
    fn suppressed_dumps_count_as_dropped_and_rearm_restores_budget() {
        // An isolated session so the flight.dropped counter is readable
        // without races against other tests' global registry traffic.
        let session = Arc::new(crate::session::ObsSession::isolated());
        let _g = crate::session::install(Arc::clone(&session));
        let fr = FlightRecorder::new(4);
        fr.set_max_dumps(1);
        assert!(fr.trigger("a", vec![]));
        assert!(!fr.trigger("b", vec![]));
        assert!(!fr.trigger("c", vec![]));
        let dropped = session
            .capture()
            .metrics
            .counters
            .iter()
            .find(|(n, _)| n == "flight.dropped")
            .map(|(_, v)| *v);
        assert_eq!(dropped, Some(2), "each suppressed postmortem is a drop");
        // Re-arming only the dump budget: the next trigger dumps again.
        fr.rearm_dumps();
        assert_eq!(fr.dumps(), 0);
        assert!(fr.trigger("d", vec![]), "budget is per-run, not per-process");
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let fr = FlightRecorder::new(4);
        fr.set_unavailable_threshold(1);
        fr.set_disabled(true);
        fr.event(&event("x", 0));
        assert!(fr.ring.is_empty(), "ring writes are dropped");
        assert!(!fr.note_availability("gps", false), "streaks never trip");
        assert!(!fr.trigger("a", vec![]), "triggers never dump");
        assert_eq!(fr.dumps(), 0);
        fr.set_disabled(false);
        assert!(fr.trigger("b", vec![]), "re-enabling restores dumps");
    }

    #[test]
    fn counters_delta_is_since_previous_dump() {
        let fr = FlightRecorder::new(4);
        let (exporter, buf) = sink();
        fr.set_sink(Some(exporter));
        // Unique counter name: the global registry is shared across tests.
        let name = "flight.test.delta_counter";
        global_metrics().counter(name).add(5);
        assert!(fr.trigger("first", vec![]));
        global_metrics().counter(name).add(2);
        assert!(fr.trigger("second", vec![]));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let delta_of = |line: &str| -> Option<i64> {
            let doc = Json::parse(line).unwrap();
            doc.get("counters_delta").unwrap().as_arr().unwrap().iter().find_map(|pair| {
                let pair = pair.as_arr().unwrap();
                (pair[0].as_str().unwrap() == name).then(|| pair[1].as_i64().unwrap())
            })
        };
        assert!(delta_of(lines[0]).unwrap() >= 5);
        assert_eq!(delta_of(lines[1]), Some(2));
    }

    #[test]
    fn reset_rearms_everything() {
        let fr = FlightRecorder::new(4);
        fr.set_max_dumps(1);
        fr.set_unavailable_threshold(1);
        fr.event(&event("x", 0));
        assert!(fr.note_availability("gps", false));
        assert!(fr.trigger("a", vec![]));
        assert!(!fr.trigger("b", vec![]));
        fr.reset();
        assert_eq!(fr.dumps(), 0);
        assert!(fr.ring.is_empty());
        assert!(fr.note_availability("gps", false), "streak state cleared");
        assert!(fr.trigger("c", vec![]), "dump budget restored");
    }
}
