//! Clock abstraction for the observability layer.
//!
//! Timing data must never feed back into pipeline computation — the golden
//! traces pin the pipeline's output byte-for-byte, so wall-clock values
//! live only in the metrics/trace sidecar. Two implementations:
//!
//! * [`MonotonicClock`] — wall time from [`std::time::Instant`], anchored
//!   at construction. The default for real timing measurements.
//! * [`VirtualClock`] — a deterministic clock keyed to simulation epochs.
//!   The pipeline advances it to `epoch_time * 1e9` nanoseconds each
//!   epoch, so exported span timestamps are a pure function of the seeds
//!   and two runs produce byte-identical trace files.
//!
//! Both are monotone: [`VirtualClock`] enforces it with a saturating
//! `fetch_max`, so a stale writer can never make time go backwards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of monotone nanosecond timestamps.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch. Must be monotone
    /// non-decreasing across calls.
    fn now_ns(&self) -> u64;

    /// Downcast hook: `Some` when this clock is a [`VirtualClock`] that
    /// the pipeline should drive from simulation time.
    fn as_virtual(&self) -> Option<&VirtualClock> {
        None
    }
}

/// Wall-clock time relative to an anchor taken at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    anchor: Instant,
}

impl MonotonicClock {
    /// Creates a clock anchored at "now".
    pub fn new() -> Self {
        MonotonicClock { anchor: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturate instead of wrapping: a process would need ~584 years of
        // uptime to overflow u64 nanoseconds.
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock driven by the simulation.
///
/// The pipeline calls [`VirtualClock::set_seconds`] with each epoch's
/// simulation time; spans then measure zero-width intervals within an
/// epoch and exact epoch spacings across epochs — deterministic content
/// for golden-comparable trace files.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        VirtualClock { now_ns: AtomicU64::new(0) }
    }

    /// Advances by `dt_ns` nanoseconds.
    pub fn advance_ns(&self, dt_ns: u64) {
        self.now_ns.fetch_add(dt_ns, Ordering::Relaxed);
    }

    /// Moves the clock to `t_ns`, saturating to monotone: a target in the
    /// past leaves the clock untouched.
    pub fn set_ns(&self, t_ns: u64) {
        self.now_ns.fetch_max(t_ns, Ordering::Relaxed);
    }

    /// Moves the clock to simulation time `t` seconds (negative or
    /// non-finite values clamp to zero).
    pub fn set_seconds(&self, t: f64) {
        let t_ns = if t.is_finite() && t > 0.0 { (t * 1e9) as u64 } else { 0 };
        self.set_ns(t_ns);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    fn as_virtual(&self) -> Option<&VirtualClock> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(c.as_virtual().is_none());
    }

    #[test]
    fn virtual_clock_advances_and_saturates() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(10);
        assert_eq!(c.now_ns(), 10);
        c.set_ns(100);
        assert_eq!(c.now_ns(), 100);
        // Setting the past is a no-op, not a rewind.
        c.set_ns(50);
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    fn virtual_clock_from_seconds() {
        let c = VirtualClock::new();
        c.set_seconds(1.5);
        assert_eq!(c.now_ns(), 1_500_000_000);
        c.set_seconds(-2.0);
        assert_eq!(c.now_ns(), 1_500_000_000);
        c.set_seconds(f64::NAN);
        assert_eq!(c.now_ns(), 1_500_000_000);
    }

    #[test]
    fn virtual_clock_downcasts() {
        let c = VirtualClock::new();
        let as_dyn: &dyn Clock = &c;
        assert!(as_dyn.as_virtual().is_some());
    }
}
