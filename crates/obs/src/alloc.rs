//! The allocation observatory: a counting [`GlobalAlloc`] wrapper that
//! attributes every heap alloc/dealloc/realloc to the innermost active
//! tracing span, giving each stage in the §7c span taxonomy an *exact*
//! heap profile.
//!
//! Why exact matters: wall-clock latencies are excluded from CI byte-diffs
//! because they are non-deterministic, but allocation counts of a seeded
//! pipeline are fully deterministic — same seed, same code, same counts.
//! That lets `bench-diff` gate on them with a zero noise budget, and lets
//! the `allocs_per_epoch` steady-state meter ride the fleet snapshot's
//! exact merge algebra byte-identically at any `--jobs`/`--shards`.
//!
//! # How attribution works
//!
//! [`CountingAlloc`] is installed as the process `#[global_allocator]`
//! (wrapping [`System`]). Its hooks never allocate: each hook bumps
//! `Cell` counters in a const-initialised, `Drop`-free thread-local,
//! indexed by the stage on top of a thread-local span stack. With
//! tracking off (the default) the stack is empty and a hook is one
//! thread-local depth check. `Dispatcher::span` pushes an interned stage
//! id at span open and snapshots that stage's slots; `SpanGuard::drop`
//! pops, computes deltas and flushes them into `alloc.*` counters in the
//! active metrics registry — self (exclusive) accounting, since a nested
//! span's allocations land in the nested stage's slots, not the parent's.
//!
//! Tracking is opted into per
//! [`ObsSession`](crate::session::ObsSession) (the `alloc_tracking`
//! field): a fleet run's walker sessions ask for attribution while every
//! concurrently installed session that did not stays byte-identically
//! unaffected — there is no process-global flag for sessions to race on.
//! Code with no session installed follows [`set_tracking`] instead.
//!
//! The observatory pauses itself around its own bookkeeping (the span
//! guard's name buffer, counter-name formatting, registry inserts) via a
//! pause depth, so obs-internal allocations are not attributed to the
//! pipeline. Allocations outside any span (scheduler threads, artifact
//! writers) are deliberately **not** counted: attributing them would tie
//! the profile to which worker thread ran what, breaking `--jobs`
//! invariance. The meter therefore covers exactly the span-covered hot
//! path — the part the zero-alloc work targets.
//!
//! # Steady-state meter
//!
//! `Session::step` reports its epoch index via [`epoch_phase`] before any
//! span opens; epochs past [`STEADY_WARMUP_EPOCHS`] count as steady state.
//! Steady epochs increment the `alloc.steady_epochs` counter and steady
//! span flushes add their alloc deltas to `alloc.steady.allocs`, so
//! `allocs_per_epoch = alloc.steady.allocs / alloc.steady_epochs` is an
//! exact integer ratio that merges across sessions and shards by plain
//! summation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::metrics::global_metrics;

/// Epochs a session must serve before its allocations count as steady
/// state. Warmup epochs grow caches, ring buffers and per-session state;
/// the budget gate only cares about the loop after that settles.
pub const STEADY_WARMUP_EPOCHS: u64 = 2;

/// The interned stage table: every span name in the §7c taxonomy that the
/// per-epoch hot path opens, plus a terminal `"other"` bucket for names
/// outside the table. Linear-scanned once per span open (never per
/// allocation).
pub const STAGES: &[&str] = &[
    "engine.update",
    "engine.predict",
    "engine.confidence",
    "engine.fuse",
    "scheme.estimate.wifi",
    "scheme.estimate.cellular",
    "scheme.estimate.gps",
    "scheme.estimate.motion",
    "scheme.estimate.fusion",
    "pipeline.build_context",
    "pipeline.collect_training",
    "pipeline.run_walk",
    "other",
];

const N_STAGES: usize = STAGES.len();
const OTHER: u8 = (N_STAGES - 1) as u8;

/// Span nesting deeper than this stops opening new attribution frames
/// (the taxonomy nests 3 deep; 32 is pure safety margin).
const MAX_DEPTH: usize = 32;

/// Slots per stage: allocs, bytes (allocated, monotone), deallocs,
/// reallocs.
const SLOTS_PER_STAGE: usize = 4;

/// Process-wide tracking flag for threads with no session installed.
/// Off by default.
static TRACKING: AtomicBool = AtomicBool::new(false);

struct AllocTls {
    /// Span-stack depth (entries above `MAX_DEPTH` are not stored).
    depth: Cell<usize>,
    /// Self-pause depth: while > 0 the hooks skip attribution so the
    /// observatory's own allocations stay out of the profile.
    pause: Cell<usize>,
    /// Whether the current epoch is past the warmup window.
    steady: Cell<bool>,
    /// Interned stage ids of the open spans, innermost last.
    stack: [Cell<u8>; MAX_DEPTH],
    /// Per-stage counters: `[stage * 4 + {allocs,bytes,deallocs,reallocs}]`.
    slots: [Cell<u64>; N_STAGES * SLOTS_PER_STAGE],
}

// Const-initialised and Drop-free: accessing it from the allocator hooks
// never allocates and never recurses, and `try_with` degrades to a no-op
// during thread teardown.
thread_local! {
    static TLS: AllocTls = const {
        AllocTls {
            depth: Cell::new(0),
            pause: Cell::new(0),
            steady: Cell::new(false),
            stack: [const { Cell::new(0) }; MAX_DEPTH],
            slots: [const { Cell::new(0) }; N_STAGES * SLOTS_PER_STAGE],
        }
    };
}

/// Turns span-attributed allocation tracking on or off for code running
/// with **no** [`ObsSession`](crate::session::ObsSession) installed
/// (threads with a session installed follow the session's
/// `alloc_tracking` opt-in instead, so concurrent sessions never race on
/// this flag).
pub fn set_tracking(on: bool) {
    TRACKING.store(on, Ordering::Relaxed);
}

/// The process-wide (no-session) tracking flag.
pub fn tracking_enabled() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// Whether attribution is active on the current thread: the installed
/// session's `alloc_tracking` opt-in when a session is installed,
/// otherwise the process-wide flag.
pub fn tracking_active() -> bool {
    match crate::session::current() {
        Some(session) => session.alloc_tracking,
        None => tracking_enabled(),
    }
}

/// RAII scope for [`set_tracking`]: restores the previous state on drop
/// (fleet runs enable tracking for their duration without clobbering an
/// enclosing scope).
pub struct TrackingGuard {
    prev: bool,
}

/// Enables (or disables) tracking for the guard's lifetime.
pub fn track_scope(on: bool) -> TrackingGuard {
    let prev = TRACKING.swap(on, Ordering::Relaxed);
    TrackingGuard { prev }
}

impl Drop for TrackingGuard {
    fn drop(&mut self) {
        TRACKING.store(self.prev, Ordering::Relaxed);
    }
}

/// RAII self-pause: while alive, this thread's heap ops are not
/// attributed. The observatory wraps its own bookkeeping in one of these.
pub struct PauseGuard {
    _priv: (),
}

/// Pauses attribution on the current thread until the guard drops.
pub fn pause() -> PauseGuard {
    let _ = TLS.try_with(|t| t.pause.set(t.pause.get() + 1));
    PauseGuard { _priv: () }
}

impl Drop for PauseGuard {
    fn drop(&mut self) {
        let _ = TLS.try_with(|t| t.pause.set(t.pause.get().saturating_sub(1)));
    }
}

/// An open attribution frame: which stage to charge and the stage's slot
/// values at open, so close can flush exact deltas.
pub struct SpanToken {
    stage: u8,
    base: [u64; SLOTS_PER_STAGE],
}

fn intern(name: &str) -> u8 {
    STAGES
        .iter()
        .position(|s| *s == name)
        .map(|i| i as u8)
        .unwrap_or(OTHER)
}

fn read_stage(t: &AllocTls, stage: u8) -> [u64; SLOTS_PER_STAGE] {
    let s = stage as usize * SLOTS_PER_STAGE;
    [
        t.slots[s].get(),
        t.slots[s + 1].get(),
        t.slots[s + 2].get(),
        t.slots[s + 3].get(),
    ]
}

/// Opens an attribution frame for `name` on the current thread. Returns
/// `None` when the stack is full or thread-local state is unavailable.
/// Callers (only `Dispatcher::span`) gate on [`tracking_active`] and hold
/// a [`pause`] guard across the call.
pub fn span_open(name: &str) -> Option<SpanToken> {
    TLS.try_with(|t| {
        let depth = t.depth.get();
        if depth >= MAX_DEPTH {
            return None;
        }
        let stage = intern(name);
        t.stack[depth].set(stage);
        t.depth.set(depth + 1);
        Some(SpanToken { stage, base: read_stage(t, stage) })
    })
    .ok()
    .flatten()
}

/// Closes an attribution frame: pops the stack and flushes this frame's
/// exact deltas into `alloc.*` counters in the active metrics registry
/// (which is the installed session's registry inside a fleet worker).
/// Callers hold a [`pause`] guard across the call.
pub fn span_close(token: SpanToken) {
    let flush = TLS.try_with(|t| {
        let depth = t.depth.get();
        t.depth.set(depth.saturating_sub(1));
        let now = read_stage(t, token.stage);
        let delta = [
            now[0] - token.base[0],
            now[1] - token.base[1],
            now[2] - token.base[2],
            now[3] - token.base[3],
        ];
        (delta, t.steady.get())
    });
    let Ok((delta, steady)) = flush else { return };
    if delta == [0; SLOTS_PER_STAGE] {
        return;
    }
    let stage = STAGES[token.stage as usize];
    let m = global_metrics();
    let [allocs, bytes, deallocs, reallocs] = delta;
    if allocs > 0 {
        m.counter(&format!("alloc.allocs.{stage}")).add(allocs);
        if steady {
            m.counter("alloc.steady.allocs").add(allocs);
        }
    }
    if bytes > 0 {
        m.counter(&format!("alloc.bytes.{stage}")).add(bytes);
    }
    if deallocs > 0 {
        m.counter(&format!("alloc.deallocs.{stage}")).add(deallocs);
    }
    if reallocs > 0 {
        m.counter(&format!("alloc.reallocs.{stage}")).add(reallocs);
    }
}

/// Reports the current epoch index at the top of `Session::step`, before
/// any span opens: sets the thread's steady flag and counts steady epochs
/// into `alloc.steady_epochs`. A no-op when tracking is off.
pub fn epoch_phase(epoch_index: u64) {
    if !tracking_active() {
        return;
    }
    let steady = epoch_index >= STEADY_WARMUP_EPOCHS;
    let _ = TLS.try_with(|t| t.steady.set(steady));
    if steady {
        let _pause = pause();
        global_metrics().counter("alloc.steady_epochs").inc();
    }
}

#[derive(Clone, Copy)]
enum Op {
    Alloc,
    Dealloc,
    Realloc,
}

#[inline]
fn record(op: Op, bytes: usize) {
    // No global gate here: the span stack only ever has frames when an
    // opted-in span opened one, so `depth == 0` (a const-TLS load and a
    // branch) is both the correctness check and the fast path.
    let _ = TLS.try_with(|t| {
        let depth = t.depth.get();
        if depth == 0 || t.pause.get() > 0 {
            return;
        }
        // `depth` never exceeds MAX_DEPTH (span_open stops pushing there),
        // so the innermost stored frame is always `depth - 1`.
        let stage = t.stack[depth - 1].get() as usize;
        let s = stage * SLOTS_PER_STAGE;
        match op {
            Op::Alloc => {
                t.slots[s].set(t.slots[s].get() + 1);
                t.slots[s + 1].set(t.slots[s + 1].get() + bytes as u64);
            }
            Op::Dealloc => {
                t.slots[s + 2].set(t.slots[s + 2].get() + 1);
            }
            Op::Realloc => {
                t.slots[s + 3].set(t.slots[s + 3].get() + 1);
                t.slots[s + 1].set(t.slots[s + 1].get() + bytes as u64);
            }
        }
    });
}

/// The counting allocator: forwards every operation to [`System`] and,
/// when tracking is on, charges it to the innermost open span on the
/// current thread. The hooks themselves never allocate.
pub struct CountingAlloc;

// SAFETY: every method forwards to `System` with the caller's exact
// layout/pointer arguments; the bookkeeping before the forward only
// touches `Cell`s in a const-initialised thread-local and never
// allocates, so it cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(Op::Alloc, layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(Op::Alloc, layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        record(Op::Dealloc, 0);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(Op::Realloc, new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Every binary linking `uniloc-obs` gets the counting allocator; with
/// tracking off (the default) the cost is one relaxed atomic load per
/// heap operation.
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ObsSession;
    use std::sync::Arc;

    fn counter(capture: &crate::session::SessionCapture, name: &str) -> u64 {
        capture
            .metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    #[test]
    fn allocations_inside_a_span_are_attributed_to_its_stage() {
        let mut obs = ObsSession::isolated();
        obs.alloc_tracking = true;
        let session = Arc::new(obs);
        let _guard = crate::session::install(Arc::clone(&session));
        {
            let _span = crate::trace::global().span("engine.update");
            let v: Vec<u64> = Vec::with_capacity(64);
            std::hint::black_box(&v);
        }
        let capture = session.capture();
        assert!(counter(&capture, "alloc.allocs.engine.update") >= 1);
        assert!(counter(&capture, "alloc.bytes.engine.update") >= 64 * 8);
    }

    #[test]
    fn nested_spans_get_self_accounting_not_inclusive() {
        let mut obs = ObsSession::isolated();
        obs.alloc_tracking = true;
        let session = Arc::new(obs);
        let _guard = crate::session::install(Arc::clone(&session));
        {
            let _outer = crate::trace::global().span("engine.update");
            {
                let _inner = crate::trace::global().span("scheme.estimate.wifi");
                let v: Vec<u64> = Vec::with_capacity(1024);
                std::hint::black_box(&v);
            }
        }
        let capture = session.capture();
        // The inner span's big allocation is charged to the inner stage;
        // the outer stage sees at most obs-free incidental allocations
        // (none in this test body).
        assert!(counter(&capture, "alloc.bytes.scheme.estimate.wifi") >= 1024 * 8);
        assert!(counter(&capture, "alloc.bytes.engine.update") < 1024 * 8);
    }

    #[test]
    fn tracking_off_records_nothing() {
        // An isolated session does not opt in; nothing is attributed even
        // though spans are timed.
        let session = Arc::new(ObsSession::isolated());
        let _guard = crate::session::install(Arc::clone(&session));
        {
            let _span = crate::trace::global().span("engine.predict");
            let v: Vec<u64> = Vec::with_capacity(64);
            std::hint::black_box(&v);
        }
        let capture = session.capture();
        assert_eq!(counter(&capture, "alloc.allocs.engine.predict"), 0);
    }

    #[test]
    fn pause_guard_excludes_observatory_allocations() {
        let mut obs = ObsSession::isolated();
        obs.alloc_tracking = true;
        let session = Arc::new(obs);
        let _guard = crate::session::install(Arc::clone(&session));
        {
            let _span = crate::trace::global().span("engine.fuse");
            {
                let _pause = pause();
                let v: Vec<u64> = Vec::with_capacity(4096);
                std::hint::black_box(&v);
            }
        }
        let capture = session.capture();
        assert!(counter(&capture, "alloc.bytes.engine.fuse") < 4096 * 8);
    }

    #[test]
    fn unknown_span_names_fall_into_other() {
        assert_eq!(intern("pipeline.collect_training"), 10);
        assert_eq!(intern("no.such.stage"), OTHER);
        assert_eq!(STAGES[OTHER as usize], "other");
    }

    #[test]
    fn steady_meter_counts_post_warmup_epochs_only() {
        let mut obs = ObsSession::isolated();
        obs.alloc_tracking = true;
        let session = Arc::new(obs);
        let _guard = crate::session::install(Arc::clone(&session));
        for epoch in 0..5u64 {
            epoch_phase(epoch);
            let _span = crate::trace::global().span("engine.update");
            let v: Vec<u64> = Vec::with_capacity(16);
            std::hint::black_box(&v);
        }
        // Reset the steady flag for whatever runs next on this thread.
        let _ = TLS.try_with(|t| t.steady.set(false));
        let capture = session.capture();
        assert_eq!(counter(&capture, "alloc.steady_epochs"), 3);
        let steady = counter(&capture, "alloc.steady.allocs");
        let total = counter(&capture, "alloc.allocs.engine.update");
        assert!(steady >= 3, "steady allocs should cover the 3 steady epochs");
        assert!(steady < total, "warmup allocs must not count as steady");
    }

    #[test]
    fn same_workload_has_identical_counts_across_runs() {
        let run = || {
            let mut obs = ObsSession::isolated();
            obs.alloc_tracking = true;
            let session = Arc::new(obs);
            let _guard = crate::session::install(Arc::clone(&session));
            for epoch in 0..4u64 {
                epoch_phase(epoch);
                let _span = crate::trace::global().span("engine.confidence");
                let mut v: Vec<u64> = Vec::new();
                for i in 0..33 {
                    v.push(i);
                }
                std::hint::black_box(&v);
            }
            let _ = TLS.try_with(|t| t.steady.set(false));
            let mut counters = session.capture().metrics.counters;
            counters.retain(|(n, _)| n.starts_with("alloc."));
            counters
        };
        assert_eq!(run(), run());
    }
}
