//! Per-thread observability sessions for parallel sweeps.
//!
//! The process-wide singletons ([`global_metrics`](crate::global_metrics),
//! [`global_calibration`](crate::global_calibration),
//! [`global_flight`](crate::global_flight) and the
//! [`Dispatcher`](crate::trace::Dispatcher)'s subscriber/clock) are the
//! right model for one walk at a time, but a parallel sweep interleaves
//! many walks: counters from different jobs would mix nondeterministically
//! and span timings would race. An [`ObsSession`] gives one job its own
//! registry, calibration monitor, flight recorder and clock; installing it
//! ([`install`]) redirects every `global_*` accessor *on the current
//! thread* to the session for the lifetime of the returned guard.
//!
//! The sweep engine (`uniloc-core::parallel`) installs one isolated
//! session per job — at every worker count, including one — then merges
//! the captured snapshots in canonical job order, which is what makes the
//! merged sidecar byte-identical regardless of `--jobs N`. Code that
//! never installs a session (the CLI main thread, the golden-trace tests)
//! sees the process-wide singletons exactly as before.
//!
//! Sessions are a thread-local *stack*: nested installs shadow outer ones
//! and the guard restores the previous state on drop. The guard is
//! deliberately `!Send` so a session cannot leak to another thread.

use std::cell::RefCell;
use std::io::Write;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

use crate::calib::{CalibrationMonitor, CalibrationSnapshot};
use crate::clock::{Clock, VirtualClock};
use crate::flight::{FlightRecorder, DEFAULT_RING_CAPACITY};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::trace::{JsonlExporter, Subscriber};

thread_local! {
    static STACK: RefCell<Vec<Arc<ObsSession>>> = const { RefCell::new(Vec::new()) };
}

/// A `Write` that appends into a shared in-memory buffer, so a session's
/// flight-recorder dumps can be captured and re-emitted in job order.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("session buffer").extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One job's private observability state. See the module docs.
pub struct ObsSession {
    /// The session's metrics registry (what `global_metrics` resolves to
    /// while the session is installed).
    pub metrics: Arc<MetricsRegistry>,
    /// The session's calibration monitor.
    pub calibration: Arc<CalibrationMonitor>,
    /// The session's flight recorder; its dumps land in an in-memory
    /// buffer readable via [`ObsSession::capture`].
    pub flight: Arc<FlightRecorder>,
    /// Clock override; `None` falls through to the dispatcher's clock.
    pub clock: Option<Arc<dyn Clock>>,
    /// Subscriber override. While a session is installed this *replaces*
    /// the dispatcher's subscriber — `None` means events are dropped
    /// (worker progress output would interleave nondeterministically).
    pub subscriber: Option<Arc<dyn Subscriber>>,
    /// Span-timing override: `Some(false)` turns `span.*` duration
    /// recording off for this session only (the obs-stub mode), `Some(true)`
    /// forces it on, `None` defers to the dispatcher's process-wide flag.
    pub span_timings: Option<bool>,
    /// Opt-in for span-attributed allocation tracking (see
    /// [`crate::alloc`]): while this session is installed, timed spans
    /// open attribution frames and flush `alloc.*` counters into the
    /// session's registry. Off by default so concurrent sessions that did
    /// not ask for heap profiles never see `alloc.*` counters, whatever
    /// other threads are doing.
    pub alloc_tracking: bool,
    flight_buf: Arc<Mutex<Vec<u8>>>,
}

/// Everything a finished job hands back for the deterministic merge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionCapture {
    /// Final metrics snapshot (sorted by name, as always).
    pub metrics: MetricsSnapshot,
    /// Final calibration snapshot (cells sorted by `(scheme, io)`).
    pub calibration: CalibrationSnapshot,
    /// Flight-recorder postmortem lines, in dump order.
    pub flight_lines: Vec<String>,
}

impl ObsSession {
    /// A fully isolated session: fresh registries, a fresh flight recorder
    /// whose dumps buffer in memory, a [`VirtualClock`] (so span durations
    /// are simulation-time deltas, deterministic across runs and worker
    /// counts), and the flight recorder as the sole subscriber (so its
    /// ring sees the job's trace window, as the process-wide chain does).
    pub fn isolated() -> Self {
        let flight = Arc::new(FlightRecorder::new(DEFAULT_RING_CAPACITY));
        let flight_buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        flight.set_sink(Some(Arc::new(JsonlExporter::new(Box::new(SharedBuf(Arc::clone(
            &flight_buf,
        )))))));
        ObsSession {
            metrics: Arc::new(MetricsRegistry::new()),
            calibration: Arc::new(CalibrationMonitor::default()),
            subscriber: Some(Arc::clone(&flight) as Arc<dyn Subscriber>),
            flight,
            clock: Some(Arc::new(VirtualClock::new())),
            span_timings: None,
            alloc_tracking: false,
            flight_buf,
        }
    }

    /// A stubbed session: every instrument site still runs, but metrics
    /// land in a sink registry, the calibration monitor and flight
    /// recorder are disabled, span timing is off and no subscriber is
    /// installed. Captures come back empty. This is the *obs off*
    /// configuration of the obs-overhead bench — observability never feeds
    /// the pipeline, so records are byte-identical either way, and the
    /// epochs/s delta against [`isolated`](Self::isolated) sessions is the
    /// layer's true cost.
    pub fn stubbed() -> Self {
        let flight = Arc::new(FlightRecorder::new(DEFAULT_RING_CAPACITY));
        flight.set_disabled(true);
        let calibration = Arc::new(CalibrationMonitor::default());
        calibration.set_disabled(true);
        ObsSession {
            metrics: Arc::new(MetricsRegistry::sink()),
            calibration,
            subscriber: None,
            flight,
            clock: Some(Arc::new(VirtualClock::new())),
            span_timings: Some(false),
            alloc_tracking: false,
            flight_buf: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Snapshots the session's state for the job-ordered merge.
    pub fn capture(&self) -> SessionCapture {
        SessionCapture {
            metrics: self.metrics.snapshot(),
            calibration: self.calibration.snapshot(),
            flight_lines: {
                let buf = self.flight_buf.lock().expect("session buffer");
                String::from_utf8_lossy(&buf).lines().map(str::to_owned).collect()
            },
        }
    }
}

/// Pops the installed session on drop. `!Send`: a session belongs to the
/// thread that installed it.
pub struct SessionGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Installs `session` as the current thread's observability target until
/// the returned guard drops. Nested installs shadow (stack discipline).
pub fn install(session: Arc<ObsSession>) -> SessionGuard {
    STACK.with(|s| s.borrow_mut().push(session));
    SessionGuard { _not_send: PhantomData }
}

/// The innermost session installed on this thread, if any.
pub fn current() -> Option<Arc<ObsSession>> {
    STACK.with(|s| s.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::global_metrics;

    #[test]
    fn install_redirects_and_guard_restores() {
        assert!(current().is_none());
        let session = Arc::new(ObsSession::isolated());
        {
            let _g = install(Arc::clone(&session));
            assert!(current().is_some());
            global_metrics().counter("session.test.counter").add(3);
        }
        assert!(current().is_none());
        // The increment landed in the session, not the process registry.
        let snap = session.capture();
        assert_eq!(
            snap.metrics.counters,
            vec![("session.test.counter".to_owned(), 3)]
        );
        let process = crate::metrics::process_metrics().snapshot();
        assert!(
            !process.counters.iter().any(|(n, _)| n == "session.test.counter"),
            "process registry must not see session counters"
        );
    }

    #[test]
    fn sessions_nest_with_stack_discipline() {
        let outer = Arc::new(ObsSession::isolated());
        let inner = Arc::new(ObsSession::isolated());
        let _go = install(Arc::clone(&outer));
        {
            let _gi = install(Arc::clone(&inner));
            global_metrics().counter("nested").inc();
        }
        global_metrics().counter("outer_only").inc();
        assert!(inner.capture().metrics.counters.iter().any(|(n, _)| n == "nested"));
        assert!(!outer.capture().metrics.counters.iter().any(|(n, _)| n == "nested"));
        assert!(outer.capture().metrics.counters.iter().any(|(n, _)| n == "outer_only"));
    }

    #[test]
    fn flight_dumps_are_captured_in_memory() {
        let session = Arc::new(ObsSession::isolated());
        {
            let _g = install(Arc::clone(&session));
            session.flight.trigger("session_test", vec![]);
        }
        let capture = session.capture();
        assert_eq!(capture.flight_lines.len(), 1);
        assert!(capture.flight_lines[0].contains("\"reason\":\"session_test\""));
    }

    #[test]
    fn stubbed_session_swallows_everything() {
        let session = Arc::new(ObsSession::stubbed());
        {
            let _g = install(Arc::clone(&session));
            global_metrics().counter("stub.counter").add(7);
            global_metrics()
                .histogram("stub.hist", &[1.0])
                .record(0.5);
            {
                let _span = crate::trace::global().span("stub.span");
            }
            assert!(
                session
                    .calibration
                    .observe("wifi", "indoor", 1.0, 0.5, 1.2)
                    .is_none(),
                "disabled monitor never alarms"
            );
            assert!(!session.flight.trigger("stub_test", vec![]));
        }
        let capture = session.capture();
        assert_eq!(capture, SessionCapture::default(), "capture is empty");
    }

    #[test]
    fn virtual_clock_is_per_session() {
        let a = Arc::new(ObsSession::isolated());
        let b = Arc::new(ObsSession::isolated());
        {
            let _g = install(Arc::clone(&a));
            crate::trace::global().sync_virtual_clock(5.0);
            assert_eq!(crate::trace::global().now_ns(), 5_000_000_000);
        }
        {
            let _g = install(Arc::clone(&b));
            assert_eq!(crate::trace::global().now_ns(), 0, "fresh session clock");
        }
    }
}
