//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms with cheap atomic updates.
//!
//! Design points:
//!
//! * **Hot-path cost is one atomic op** — counters and gauges are single
//!   atomics; a histogram record is one bucket increment plus a CAS-loop
//!   float add for the running sum. Handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) are `Arc`s so instrument sites can cache them.
//! * **Snapshots are deterministic in content ordering** — every
//!   [`MetricsSnapshot`] lists metrics sorted by name (the registry keys
//!   live in `BTreeMap`s), so two snapshots of identical state serialize
//!   to identical bytes via `uniloc_stats::json`.
//! * **Fixed buckets** — histogram bucket bounds are chosen at creation
//!   and never move, which makes merges associative and snapshots
//!   mergeable across runs (see [`HistogramSnapshot::merge`]).
//!
//! Values recorded into histograms must be finite; non-finite values are
//! dropped (and counted in the snapshot's `dropped` field) rather than
//! poisoning the sum.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use uniloc_stats::impl_json_struct;
use uniloc_stats::json::{field, Json, JsonError, ToJson};

/// Bucket upper bounds for span-duration histograms, in nanoseconds
/// (1 us .. 5 s, roughly logarithmic; the last implicit bucket catches
/// everything slower).
pub const DURATION_BUCKETS_NS: &[f64] = &[
    1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8,
    2.5e8, 5e8, 1e9, 5e9,
];

/// Bucket upper bounds for predicted-minus-actual error residuals, in
/// meters (symmetric around zero; residuals beyond ±30 m land in the edge
/// buckets).
pub const RESIDUAL_BUCKETS_M: &[f64] = &[
    -30.0, -20.0, -15.0, -10.0, -7.0, -5.0, -3.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.0,
    5.0, 7.0, 10.0, 15.0, 20.0, 30.0,
];

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Lock-free float accumulation via a CAS loop on the bit pattern.
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A fixed-bucket histogram.
///
/// `bounds` are strictly ascending finite upper bounds; a value `v` lands
/// in the first bucket with `v <= bound`, or in the implicit overflow
/// bucket past the last bound. `counts` therefore has `bounds.len() + 1`
/// entries.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    dropped: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given upper bounds.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty, non-finite or not strictly
    /// ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one value. Non-finite values are dropped (tallied
    /// separately), never summed.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self.bounds.partition_point(|b| v > *b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
    }

    /// Records a duration in nanoseconds (convenience for span timings).
    pub fn record_ns(&self, ns: u64) {
        self.record(ns as f64);
    }

    /// A consistent-enough point-in-time copy (individual atomics are read
    /// independently; concurrent writers may skew sum vs. counts by the
    /// in-flight records, which is acceptable for telemetry).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// An immutable, serializable histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending, finite).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all recorded (finite) values.
    pub sum: f64,
    /// Number of non-finite values that were rejected.
    pub dropped: u64,
}

impl_json_struct!(HistogramSnapshot { bounds, counts, sum, dropped });

impl HistogramSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            None
        } else {
            Some(self.sum / n as f64)
        }
    }

    /// Lower edge of bucket `i` (the bucket below extends one bucket-width
    /// past the first bound; good enough for percentile interpolation).
    fn lo_edge(&self, i: usize) -> f64 {
        if i == 0 {
            if self.bounds.len() > 1 {
                self.bounds[0] - (self.bounds[1] - self.bounds[0])
            } else {
                self.bounds[0] - 1.0
            }
        } else {
            self.bounds[i - 1]
        }
    }

    /// Estimated `p`-th percentile (0..=100) by linear interpolation
    /// within the containing bucket; values in the overflow bucket clamp
    /// to the last bound. `None` when the histogram is empty or `p` is
    /// out of range.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let target = (p / 100.0) * n as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum as f64;
            cum += c;
            if (cum as f64) >= target {
                if i >= self.bounds.len() {
                    // Overflow bucket: no upper edge to interpolate toward.
                    return Some(*self.bounds.last().expect("non-empty bounds"));
                }
                let lo = self.lo_edge(i);
                let hi = self.bounds[i];
                let frac = ((target - prev) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
        }
        Some(*self.bounds.last().expect("non-empty bounds"))
    }

    /// The `(p50, p90, p99)` summary.
    pub fn summary(&self) -> Option<(f64, f64, f64)> {
        Some((self.percentile(50.0)?, self.percentile(90.0)?, self.percentile(99.0)?))
    }

    /// Merges two snapshots with identical bounds (bucket-wise count
    /// addition — associative and commutative by construction).
    pub fn merge(&self, other: &HistogramSnapshot) -> Result<HistogramSnapshot, String> {
        if self.bounds != other.bounds {
            return Err("cannot merge histograms with different bucket bounds".to_owned());
        }
        Ok(HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
            dropped: self.dropped + other.dropped,
        })
    }
}

/// A deterministic point-in-time copy of a [`MetricsRegistry`]: every
/// section is sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, count)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, state)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl_json_struct!(MetricsSnapshot { counters, gauges, histograms });

impl MetricsSnapshot {
    /// One compact JSON line per metric, tagged by kind — the JSONL
    /// sidecar format `uniloc run --metrics` appends after the trace
    /// events.
    pub fn jsonl_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, v) in &self.counters {
            lines.push(
                Json::Obj(vec![
                    ("kind".into(), Json::Str("counter".into())),
                    ("name".into(), Json::Str(name.clone())),
                    ("value".into(), v.to_json()),
                ])
                .to_string(),
            );
        }
        for (name, v) in &self.gauges {
            lines.push(
                Json::Obj(vec![
                    ("kind".into(), Json::Str("gauge".into())),
                    ("name".into(), Json::Str(name.clone())),
                    ("value".into(), v.to_json()),
                ])
                .to_string(),
            );
        }
        for (name, h) in &self.histograms {
            lines.push(
                Json::Obj(vec![
                    ("kind".into(), Json::Str("histogram".into())),
                    ("name".into(), Json::Str(name.clone())),
                    ("bounds".into(), h.bounds.to_json()),
                    ("counts".into(), h.counts.to_json()),
                    ("sum".into(), h.sum.to_json()),
                    ("dropped".into(), h.dropped.to_json()),
                ])
                .to_string(),
            );
        }
        lines
    }

    /// Merges two snapshots deterministically, `self` being the earlier
    /// operand in canonical job order: counters add, gauges are
    /// last-writer-wins (`later` overrides where both set a gauge),
    /// histograms bucket-merge. Names are unioned and the result stays
    /// sorted. Errors when two histograms of the same name disagree on
    /// bucket bounds.
    pub fn merge(&self, later: &MetricsSnapshot) -> Result<MetricsSnapshot, String> {
        let mut counters: std::collections::BTreeMap<String, u64> =
            self.counters.iter().cloned().collect();
        for (name, v) in &later.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        let mut gauges: std::collections::BTreeMap<String, f64> =
            self.gauges.iter().cloned().collect();
        for (name, v) in &later.gauges {
            gauges.insert(name.clone(), *v);
        }
        let mut histograms: std::collections::BTreeMap<String, HistogramSnapshot> =
            self.histograms.iter().cloned().collect();
        for (name, h) in &later.histograms {
            match histograms.get(name) {
                Some(existing) => {
                    let merged = existing
                        .merge(h)
                        .map_err(|e| format!("histogram `{name}`: {e}"))?;
                    histograms.insert(name.clone(), merged);
                }
                None => {
                    histograms.insert(name.clone(), h.clone());
                }
            }
        }
        Ok(MetricsSnapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        })
    }

    /// Folds one parsed metric JSONL line back into the snapshot; lines of
    /// other kinds (spans, log events) are ignored. Returns whether the
    /// line was a metric.
    pub fn absorb_jsonl(&mut self, line: &Json) -> Result<bool, JsonError> {
        let Some(kind) = line.get("kind").and_then(Json::as_str) else {
            return Ok(false);
        };
        match kind {
            "counter" => {
                let name: String = field(line, "name")?;
                let value: u64 = field(line, "value")?;
                self.counters.push((name, value));
            }
            "gauge" => {
                let name: String = field(line, "name")?;
                let value: f64 = field(line, "value")?;
                self.gauges.push((name, value));
            }
            "histogram" => {
                let name: String = field(line, "name")?;
                let snap = HistogramSnapshot {
                    bounds: field(line, "bounds")?,
                    counts: field(line, "counts")?,
                    sum: field(line, "sum")?,
                    dropped: field(line, "dropped")?,
                };
                self.histograms.push((name, snap));
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// A thread-safe registry of named metrics.
///
/// Lookup takes a mutex; instrument sites that care should cache the
/// returned `Arc` handle and pay only the atomic update per event.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    /// Sink mode: lookups hand out shared scratch handles that are never
    /// registered, and snapshots come back empty. The obs-stub fleet mode
    /// uses this to measure the layer's cost with the same call sites.
    sink: AtomicBool,
    scratch_counter: OnceLock<Arc<Counter>>,
    scratch_gauge: OnceLock<Arc<Gauge>>,
    scratch_histogram: OnceLock<Arc<Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Creates a sink registry: updates land in shared scratch atomics
    /// (kept out of every snapshot), so instrument sites run unchanged
    /// while the registry remembers nothing.
    pub fn sink() -> Self {
        let reg = MetricsRegistry::default();
        reg.sink.store(true, Ordering::Relaxed);
        reg
    }

    fn is_sink(&self) -> bool {
        self.sink.load(Ordering::Relaxed)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if self.is_sink() {
            return Arc::clone(self.scratch_counter.get_or_init(Default::default));
        }
        let mut map = self.counters.lock().expect("metrics mutex");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if self.is_sink() {
            return Arc::clone(self.scratch_gauge.get_or_init(Default::default));
        }
        let mut map = self.gauges.lock().expect("metrics mutex");
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_owned(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created with `bounds` on first use
    /// (later callers share the original buckets regardless of their
    /// `bounds` argument, keeping merges well-defined).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if self.is_sink() {
            // The first caller's bounds serve every scratch record; the
            // values are never read back, so the bucketing is irrelevant.
            return Arc::clone(
                self.scratch_histogram.get_or_init(|| Arc::new(Histogram::new(bounds))),
            );
        }
        let mut map = self.histograms.lock().expect("metrics mutex");
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new(bounds));
                map.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// A deterministic snapshot: metrics sorted by name within each kind.
    /// A sink registry snapshots empty.
    pub fn snapshot(&self) -> MetricsSnapshot {
        if self.is_sink() {
            return MetricsSnapshot::default();
        }
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics mutex")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics mutex")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics mutex")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Folds a snapshot into this live registry: counters add, gauges set
    /// to the snapshot's value, histograms bucket-add (created with the
    /// snapshot's bounds on first sight). This is how a parallel bench run
    /// re-absorbs its workers' span timings so `BENCH_*.json` breakdowns
    /// stay populated. Errors on bucket-bound mismatch with an existing
    /// histogram.
    pub fn absorb(&self, snap: &MetricsSnapshot) -> Result<(), String> {
        for (name, v) in &snap.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name).set(*v);
        }
        for (name, h) in &snap.histograms {
            let live = self.histogram(name, &h.bounds);
            if live.bounds != h.bounds {
                return Err(format!("histogram `{name}`: bucket bounds differ"));
            }
            for (slot, &c) in live.counts.iter().zip(&h.counts) {
                slot.fetch_add(c, Ordering::Relaxed);
            }
            atomic_f64_add(&live.sum_bits, h.sum);
            live.dropped.fetch_add(h.dropped, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Drops every registered metric (test isolation; cached handles keep
    /// their atomics but detach from future snapshots).
    pub fn reset(&self) {
        self.counters.lock().expect("metrics mutex").clear();
        self.gauges.lock().expect("metrics mutex").clear();
        self.histograms.lock().expect("metrics mutex").clear();
    }
}

/// The registry the instrumentation writes to: the current thread's
/// [`ObsSession`](crate::session::ObsSession) when one is installed,
/// otherwise the process-wide registry.
pub fn global_metrics() -> Arc<MetricsRegistry> {
    if let Some(session) = crate::session::current() {
        return Arc::clone(&session.metrics);
    }
    process_metrics()
}

/// The process-wide registry, bypassing any installed session.
pub fn process_metrics() -> Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_stats::json::{from_str, to_string};

    #[test]
    fn counters_and_gauges_update() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("epochs");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same handle.
        assert_eq!(reg.counter("epochs").get(), 5);

        let g = reg.gauge("ess");
        g.set(123.5);
        assert_eq!(reg.gauge("ess").get(), 123.5);
    }

    #[test]
    fn histogram_buckets_values() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        // 0.5 and 1.0 in bucket 0 (v <= 1.0), 1.5 in bucket 1, 3.0 in
        // bucket 2, 100.0 in overflow.
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count(), 5);
        assert!((s.sum - 106.0).abs() < 1e-12);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn histogram_drops_non_finite() {
        let h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(0.5);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.dropped, 2);
        assert!(s.sum.is_finite());
    }

    #[test]
    fn percentiles_are_sane() {
        let h = Histogram::new(&[10.0, 20.0, 30.0, 40.0]);
        for i in 0..100 {
            h.record(f64::from(i) * 0.4); // uniform 0..40
        }
        let s = h.snapshot();
        let (p50, p90, p99) = s.summary().unwrap();
        assert!((p50 - 20.0).abs() < 5.0, "p50 {p50}");
        assert!((p90 - 36.0).abs() < 5.0, "p90 {p90}");
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((s.mean().unwrap() - 19.8).abs() < 1e-9);
    }

    #[test]
    fn percentile_edge_cases() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.snapshot().percentile(50.0), None, "empty histogram");
        h.record(5.0); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), Some(1.0), "overflow clamps to last bound");
        assert_eq!(s.percentile(101.0), None);
    }

    #[test]
    fn merge_requires_matching_bounds() {
        let a = Histogram::new(&[1.0, 2.0]).snapshot();
        let b = Histogram::new(&[1.0, 3.0]).snapshot();
        assert!(a.merge(&b).is_err());

        let h1 = Histogram::new(&[1.0, 2.0]);
        h1.record(0.5);
        let h2 = Histogram::new(&[1.0, 2.0]);
        h2.record(1.5);
        let merged = h1.snapshot().merge(&h2.snapshot()).unwrap();
        assert_eq!(merged.counts, vec![1, 1, 0]);
        assert_eq!(merged.sum, 2.0);
    }

    #[test]
    fn snapshot_ordering_is_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("zebra").inc();
        reg.counter("alpha").inc();
        reg.gauge("mid").set(1.0);
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.counters[0].0, "alpha");
        assert_eq!(s1.counters[1].0, "zebra");
        assert_eq!(to_string(&s1), to_string(&s2));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(3);
        reg.gauge("b").set(-1.5);
        reg.histogram("c", &[1.0, 2.0]).record(1.5);
        let snap = reg.snapshot();
        let back: MetricsSnapshot = from_str(&to_string(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn jsonl_lines_absorb_back() {
        let reg = MetricsRegistry::new();
        reg.counter("fusion.mode.bma").add(7);
        reg.gauge("pdr.ess").set(250.0);
        reg.histogram("residual", RESIDUAL_BUCKETS_M).record(0.25);
        let snap = reg.snapshot();

        let mut back = MetricsSnapshot::default();
        for line in snap.jsonl_lines() {
            let parsed = Json::parse(&line).unwrap();
            assert!(back.absorb_jsonl(&parsed).unwrap());
        }
        assert_eq!(back, snap);
        // Non-metric lines are skipped, not errors.
        let span = Json::parse(r#"{"kind":"span","name":"x"}"#).unwrap();
        assert!(!back.absorb_jsonl(&span).unwrap());
    }

    #[test]
    fn snapshot_merge_adds_counters_and_overrides_gauges() {
        let a = MetricsRegistry::new();
        a.counter("epochs").add(3);
        a.counter("only_a").inc();
        a.gauge("tau").set(0.25);
        a.gauge("only_a_gauge").set(1.0);
        a.histogram("lat", &[1.0, 2.0]).record(0.5);
        let b = MetricsRegistry::new();
        b.counter("epochs").add(4);
        b.gauge("tau").set(0.75);
        b.histogram("lat", &[1.0, 2.0]).record(1.5);
        b.histogram("only_b", &[1.0]).record(0.5);

        let merged = a.snapshot().merge(&b.snapshot()).unwrap();
        assert!(merged.counters.contains(&("epochs".to_owned(), 7)));
        assert!(merged.counters.contains(&("only_a".to_owned(), 1)));
        assert!(merged.gauges.contains(&("tau".to_owned(), 0.75)), "later writer wins");
        assert!(merged.gauges.contains(&("only_a_gauge".to_owned(), 1.0)));
        let lat = &merged.histograms.iter().find(|(n, _)| n == "lat").unwrap().1;
        assert_eq!(lat.counts, vec![1, 1, 0]);
        assert!(merged.histograms.iter().any(|(n, _)| n == "only_b"));
        // Sorted output, and mismatched bounds are an error.
        let names: Vec<&String> = merged.counters.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let c = MetricsRegistry::new();
        c.histogram("lat", &[9.0]).record(0.5);
        assert!(a.snapshot().merge(&c.snapshot()).is_err());
    }

    #[test]
    fn registry_absorbs_snapshot() {
        let src = MetricsRegistry::new();
        src.counter("n").add(2);
        src.gauge("g").set(4.5);
        src.histogram("h", &[1.0, 2.0]).record(1.5);
        let dst = MetricsRegistry::new();
        dst.counter("n").add(1);
        dst.absorb(&src.snapshot()).unwrap();
        let snap = dst.snapshot();
        assert!(snap.counters.contains(&("n".to_owned(), 3)));
        assert!(snap.gauges.contains(&("g".to_owned(), 4.5)));
        let h = &snap.histograms.iter().find(|(n, _)| n == "h").unwrap().1;
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum, 1.5);
        // Bound mismatch is an error.
        let bad = MetricsRegistry::new();
        bad.histogram("h", &[7.0]).record(0.5);
        assert!(dst.absorb(&bad.snapshot()).is_err());
    }

    #[test]
    fn registry_reset_clears() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.reset();
        assert!(reg.snapshot().counters.is_empty());
    }
}
