//! Online calibration monitoring for the per-scheme error models.
//!
//! UniLoc's arbitration rests on one invariant: a scheme's predicted error
//! distribution `Y_t ~ N(mu_t, sigma_eps)` must describe its *realized*
//! error. This module judges that invariant continuously, per
//! `(scheme, environment)` cell, from the evaluation harness' stream of
//! `(predicted mean, predicted sigma, realized error)` observations:
//!
//! * **Reliability bins** — the probability integral transform
//!   `PIT = Phi((realized - mu) / sigma)` of each observation, bucketed
//!   into equal-width bins over `[0, 1]`. A calibrated model yields a
//!   uniform PIT histogram; mass piled at 1.0 means the model
//!   under-predicts its error, mass at 0.0 means it over-predicts.
//! * **Coverage** — for each nominal quantile `q`, the fraction of
//!   observations with `realized <= mu + sigma * Phi^-1(q)`. Calibrated
//!   models observe coverage ~= `q`.
//! * **Sharpness** — mean predicted error and mean predicted sigma (a
//!   model can be calibrated yet useless if its intervals are huge).
//! * **Drift detection** — a two-sided CUSUM over the *standardized*
//!   residual stream `z_t = (realized - mu) / sigma`. For a calibrated
//!   model `z_t` is approximately standard normal; a stale model (e.g.
//!   indoor fingerprints applied outdoors) shifts the stream and the
//!   CUSUM statistic crosses its threshold within a handful of epochs.
//!   Alarms emit a `calib.drift` warn event, bump the
//!   `calib.drift_alarms` counter, and are returned to the caller so the
//!   flight recorder (see [`crate::flight`]) can capture a postmortem.
//!
//! Like every `uniloc-obs` surface this is a strict sidecar: observing
//! reads pipeline values and writes only monitor state, trace events and
//! metrics — never anything the pipeline consumes. Snapshots are
//! deterministic (cells sorted by key) and serialize byte-stably through
//! `uniloc_stats::json`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::global_metrics;
use crate::trace::{FieldValue, TraceLevel};
use uniloc_stats::impl_json_struct;
use uniloc_stats::json::{Json, JsonError, ToJson};
use uniloc_stats::Normal;

/// Standardized residuals are clamped to this magnitude before feeding the
/// CUSUM so one absurd observation cannot trip the detector alone.
pub const Z_CLAMP: f64 = 8.0;

/// Tuning for the calibration monitor.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Number of equal-width PIT reliability bins over `[0, 1]`.
    pub pit_bins: usize,
    /// Nominal quantiles tracked for coverage (each must be in `(0, 1)`).
    pub quantiles: Vec<f64>,
    /// CUSUM slack per observation (in standardized-residual units): drift
    /// accumulates only while `|z|` exceeds this on average.
    pub cusum_slack: f64,
    /// CUSUM alarm threshold (standardized-residual units).
    pub cusum_lambda: f64,
    /// Minimum observations in a cell before its first alarm may fire.
    pub min_obs: u64,
    /// Observations a cell must accumulate after an alarm before the next
    /// one may fire (alarm rate limiting).
    pub cooldown_obs: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            pit_bins: 10,
            quantiles: vec![0.5, 0.8, 0.9, 0.95],
            cusum_slack: 0.5,
            cusum_lambda: 18.0,
            min_obs: 10,
            cooldown_obs: 50,
        }
    }
}

/// A drift alarm raised by [`CalibrationMonitor::observe`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAlarm {
    /// Scheme whose error model drifted.
    pub scheme: String,
    /// Environment (`indoor` / `outdoor`).
    pub io: String,
    /// `under_predicted_error` (model optimistic — the stale-model case)
    /// or `over_predicted_error` (model pessimistic).
    pub direction: String,
    /// CUSUM statistic at alarm time.
    pub statistic: f64,
    /// Observations the cell had seen when the alarm fired.
    pub n: u64,
}

/// Rolling per-cell state.
#[derive(Debug, Clone)]
struct Cell {
    n: u64,
    dropped: u64,
    pit_counts: Vec<u64>,
    cover_hits: Vec<u64>,
    sum_predicted: f64,
    sum_sigma: f64,
    sum_realized: f64,
    cusum_pos: f64,
    cusum_neg: f64,
    since_alarm: u64,
    alarms: u64,
}

impl Cell {
    fn new(cfg: &CalibrationConfig) -> Self {
        Cell {
            n: 0,
            dropped: 0,
            pit_counts: vec![0; cfg.pit_bins],
            cover_hits: vec![0; cfg.quantiles.len()],
            sum_predicted: 0.0,
            sum_sigma: 0.0,
            sum_realized: 0.0,
            cusum_pos: 0.0,
            cusum_neg: 0.0,
            // Seeded at the cooldown so the *first* alarm is gated only by
            // `min_obs`.
            since_alarm: u64::MAX,
            alarms: 0,
        }
    }
}

/// One `(scheme, environment)` cell of a [`CalibrationSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationCell {
    /// Scheme name (`gps`, `wifi`, ...).
    pub scheme: String,
    /// Environment name (`indoor` / `outdoor`).
    pub io: String,
    /// Observations absorbed.
    pub n: u64,
    /// Observations rejected for non-finite inputs.
    pub dropped: u64,
    /// PIT reliability bin counts (equal-width over `[0, 1]`).
    pub pit_counts: Vec<u64>,
    /// Nominal coverage quantiles.
    pub quantiles: Vec<f64>,
    /// Observed coverage per nominal quantile.
    pub coverage: Vec<f64>,
    /// Sharpness: mean predicted error (m).
    pub mean_predicted: f64,
    /// Sharpness: mean predicted sigma (m).
    pub mean_sigma: f64,
    /// Mean realized error (m).
    pub mean_realized: f64,
    /// Mean residual, predicted − realized (m); near zero when calibrated.
    pub mean_residual: f64,
    /// Current positive-side CUSUM statistic (under-prediction drift).
    pub cusum_pos: f64,
    /// Current negative-side CUSUM statistic (over-prediction drift).
    pub cusum_neg: f64,
    /// Drift alarms raised so far in this cell.
    pub drift_alarms: u64,
}

impl_json_struct!(CalibrationCell {
    scheme,
    io,
    n,
    dropped,
    pit_counts,
    quantiles,
    coverage,
    mean_predicted,
    mean_sigma,
    mean_realized,
    mean_residual,
    cusum_pos,
    cusum_neg,
    drift_alarms,
});

/// A deterministic point-in-time copy of a [`CalibrationMonitor`]: cells
/// sorted by `(scheme, io)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationSnapshot {
    /// One entry per observed `(scheme, environment)` cell.
    pub cells: Vec<CalibrationCell>,
}

impl_json_struct!(CalibrationSnapshot { cells });

impl CalibrationSnapshot {
    /// One compact JSON line per cell, tagged `"kind":"calibration"` — the
    /// format `uniloc run --metrics` appends after the metrics snapshot
    /// and `uniloc inspect-calibration` reads back.
    pub fn jsonl_lines(&self) -> Vec<String> {
        self.cells
            .iter()
            .map(|cell| {
                let Json::Obj(fields) = cell.to_json() else {
                    unreachable!("impl_json_struct serializes to an object")
                };
                let mut pairs =
                    vec![("kind".to_owned(), Json::Str("calibration".to_owned()))];
                pairs.extend(fields);
                Json::Obj(pairs).to_string()
            })
            .collect()
    }

    /// Folds one parsed `"kind":"calibration"` JSONL line back into the
    /// snapshot; lines of other kinds are ignored. Returns whether the
    /// line was a calibration cell.
    pub fn absorb_jsonl(&mut self, line: &Json) -> Result<bool, JsonError> {
        if line.get("kind").and_then(Json::as_str) != Some("calibration") {
            return Ok(false);
        }
        self.cells.push(uniloc_stats::json::FromJson::from_json(line)?);
        Ok(true)
    }

    /// Merges two snapshots deterministically, `self` being the earlier
    /// operand in canonical job order. Cells are matched by
    /// `(scheme, io)`: counts (`n`, `dropped`, `pit_counts`,
    /// `drift_alarms`) add, coverage and means combine weighted by each
    /// side's `n`, and the trailing CUSUM state comes from `later` when it
    /// observed the cell (the CUSUM is a running statistic, so the later
    /// job's is the "current" one). Cells present on one side pass
    /// through; the result stays sorted. Errors when matched cells
    /// disagree on bin count or quantiles.
    pub fn merge(&self, later: &CalibrationSnapshot) -> Result<CalibrationSnapshot, String> {
        let mut cells: BTreeMap<(String, String), CalibrationCell> = self
            .cells
            .iter()
            .map(|c| ((c.scheme.clone(), c.io.clone()), c.clone()))
            .collect();
        for b in &later.cells {
            let key = (b.scheme.clone(), b.io.clone());
            let Some(a) = cells.get(&key) else {
                cells.insert(key, b.clone());
                continue;
            };
            if a.pit_counts.len() != b.pit_counts.len() {
                return Err(format!(
                    "calibration cell {}/{}: PIT bin counts differ",
                    b.scheme, b.io
                ));
            }
            if a.quantiles != b.quantiles {
                return Err(format!(
                    "calibration cell {}/{}: coverage quantiles differ",
                    b.scheme, b.io
                ));
            }
            let n = a.n + b.n;
            let weighted = |x: f64, y: f64| {
                if n == 0 {
                    0.0
                } else {
                    (x * a.n as f64 + y * b.n as f64) / n as f64
                }
            };
            let merged = CalibrationCell {
                scheme: a.scheme.clone(),
                io: a.io.clone(),
                n,
                dropped: a.dropped + b.dropped,
                pit_counts: a
                    .pit_counts
                    .iter()
                    .zip(&b.pit_counts)
                    .map(|(x, y)| x + y)
                    .collect(),
                quantiles: a.quantiles.clone(),
                coverage: a
                    .coverage
                    .iter()
                    .zip(&b.coverage)
                    .map(|(x, y)| weighted(*x, *y))
                    .collect(),
                mean_predicted: weighted(a.mean_predicted, b.mean_predicted),
                mean_sigma: weighted(a.mean_sigma, b.mean_sigma),
                mean_realized: weighted(a.mean_realized, b.mean_realized),
                mean_residual: weighted(a.mean_residual, b.mean_residual),
                cusum_pos: if b.n > 0 { b.cusum_pos } else { a.cusum_pos },
                cusum_neg: if b.n > 0 { b.cusum_neg } else { a.cusum_neg },
                drift_alarms: a.drift_alarms + b.drift_alarms,
            };
            cells.insert(key, merged);
        }
        Ok(CalibrationSnapshot { cells: cells.into_values().collect() })
    }
}

/// The online calibration monitor: rolling reliability, coverage and drift
/// state per `(scheme, environment)` cell.
#[derive(Debug)]
pub struct CalibrationMonitor {
    cfg: CalibrationConfig,
    /// `Phi^-1(q)` per configured quantile, precomputed.
    z_quantiles: Vec<f64>,
    cells: Mutex<BTreeMap<(String, String), Cell>>,
    /// Obs-stub switch: a disabled monitor ignores observations entirely.
    disabled: std::sync::atomic::AtomicBool,
}

impl Default for CalibrationMonitor {
    fn default() -> Self {
        CalibrationMonitor::new(CalibrationConfig::default())
    }
}

impl CalibrationMonitor {
    /// Creates a monitor with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics when `pit_bins` is zero or any quantile is outside `(0, 1)`.
    pub fn new(cfg: CalibrationConfig) -> Self {
        assert!(cfg.pit_bins > 0, "calibration monitor needs at least one PIT bin");
        assert!(
            cfg.quantiles.iter().all(|q| *q > 0.0 && *q < 1.0),
            "coverage quantiles must lie strictly inside (0, 1)"
        );
        let std = Normal::standard();
        let z_quantiles = cfg.quantiles.iter().map(|&q| std.quantile(q)).collect();
        CalibrationMonitor {
            cfg,
            z_quantiles,
            cells: Mutex::new(BTreeMap::new()),
            disabled: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The monitor's tuning.
    pub fn config(&self) -> &CalibrationConfig {
        &self.cfg
    }

    /// Disables (or re-enables) the monitor: observations become no-ops
    /// and never alarm. The obs-stub mode's switch.
    pub fn set_disabled(&self, disabled: bool) {
        self.disabled.store(disabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Absorbs one observation: scheme `scheme` in environment `io`
    /// predicted error `N(predicted_mean, predicted_sigma)` and realized
    /// error `realized` (m). Returns a [`DriftAlarm`] when this
    /// observation tripped the cell's drift detector.
    ///
    /// Alarms also emit a `calib.drift` warn event through the global
    /// dispatcher and bump the global `calib.drift_alarms` counter, so
    /// plain trace subscribers see drift without extra wiring.
    pub fn observe(
        &self,
        scheme: &str,
        io: &str,
        predicted_mean: f64,
        predicted_sigma: f64,
        realized: f64,
    ) -> Option<DriftAlarm> {
        if self.disabled.load(std::sync::atomic::Ordering::Relaxed) {
            return None;
        }
        let mut cells = self.cells.lock().expect("calibration mutex");
        let cell = cells
            .entry((scheme.to_owned(), io.to_owned()))
            .or_insert_with(|| Cell::new(&self.cfg));
        if !predicted_mean.is_finite()
            || !predicted_sigma.is_finite()
            || predicted_sigma <= 0.0
            || !realized.is_finite()
        {
            cell.dropped += 1;
            return None;
        }
        cell.n += 1;
        cell.since_alarm = cell.since_alarm.saturating_add(1);
        cell.sum_predicted += predicted_mean;
        cell.sum_sigma += predicted_sigma;
        cell.sum_realized += realized;

        let z = ((realized - predicted_mean) / predicted_sigma).clamp(-Z_CLAMP, Z_CLAMP);
        let pit = Normal::standard().cdf(z);
        let bin = ((pit * self.cfg.pit_bins as f64) as usize).min(self.cfg.pit_bins - 1);
        cell.pit_counts[bin] += 1;
        for (hit, zq) in cell.cover_hits.iter_mut().zip(&self.z_quantiles) {
            if realized <= predicted_mean + predicted_sigma * zq {
                *hit += 1;
            }
        }

        // Two-sided CUSUM on the standardized residual stream: a
        // calibrated model keeps z ~ N(0, 1) and both sides hover near
        // zero; a shifted stream grows one side ~|shift| - slack per
        // observation.
        cell.cusum_pos = (cell.cusum_pos + z - self.cfg.cusum_slack).max(0.0);
        cell.cusum_neg = (cell.cusum_neg - z - self.cfg.cusum_slack).max(0.0);
        let statistic = cell.cusum_pos.max(cell.cusum_neg);
        if statistic <= self.cfg.cusum_lambda
            || cell.n < self.cfg.min_obs
            || cell.since_alarm < self.cfg.cooldown_obs
        {
            return None;
        }

        let direction = if cell.cusum_pos >= cell.cusum_neg {
            "under_predicted_error"
        } else {
            "over_predicted_error"
        };
        cell.cusum_pos = 0.0;
        cell.cusum_neg = 0.0;
        cell.since_alarm = 0;
        cell.alarms += 1;
        let alarm = DriftAlarm {
            scheme: scheme.to_owned(),
            io: io.to_owned(),
            direction: direction.to_owned(),
            statistic,
            n: cell.n,
        };
        drop(cells);

        global_metrics().counter("calib.drift_alarms").inc();
        crate::trace::global().event(
            TraceLevel::Warn,
            "calib.drift",
            vec![
                ("scheme".to_owned(), FieldValue::Str(alarm.scheme.clone())),
                ("io".to_owned(), FieldValue::Str(alarm.io.clone())),
                ("direction".to_owned(), FieldValue::Str(alarm.direction.clone())),
                ("statistic".to_owned(), FieldValue::Num(alarm.statistic)),
                ("n".to_owned(), FieldValue::Int(alarm.n as i64)),
            ],
        );
        Some(alarm)
    }

    /// A deterministic snapshot: cells sorted by `(scheme, io)`.
    pub fn snapshot(&self) -> CalibrationSnapshot {
        let cells = self.cells.lock().expect("calibration mutex");
        CalibrationSnapshot {
            cells: cells
                .iter()
                .map(|((scheme, io), c)| {
                    let n = c.n.max(1) as f64; // avoid 0/0; empty cells report zeros
                    let denom = if c.n == 0 { f64::NAN } else { n };
                    CalibrationCell {
                        scheme: scheme.clone(),
                        io: io.clone(),
                        n: c.n,
                        dropped: c.dropped,
                        pit_counts: c.pit_counts.clone(),
                        quantiles: self.cfg.quantiles.clone(),
                        coverage: c
                            .cover_hits
                            .iter()
                            .map(|&h| if c.n == 0 { 0.0 } else { h as f64 / denom })
                            .collect(),
                        mean_predicted: if c.n == 0 { 0.0 } else { c.sum_predicted / n },
                        mean_sigma: if c.n == 0 { 0.0 } else { c.sum_sigma / n },
                        mean_realized: if c.n == 0 { 0.0 } else { c.sum_realized / n },
                        mean_residual: if c.n == 0 {
                            0.0
                        } else {
                            (c.sum_predicted - c.sum_realized) / n
                        },
                        cusum_pos: c.cusum_pos,
                        cusum_neg: c.cusum_neg,
                        drift_alarms: c.alarms,
                    }
                })
                .collect(),
        }
    }

    /// Drops every cell (test isolation / fresh runs in one process).
    pub fn reset(&self) {
        self.cells.lock().expect("calibration mutex").clear();
    }
}

/// The calibration monitor the evaluation harness feeds: the current
/// thread's [`ObsSession`](crate::session::ObsSession)'s monitor when one
/// is installed, otherwise the process-wide monitor.
pub fn global_calibration() -> Arc<CalibrationMonitor> {
    if let Some(session) = crate::session::current() {
        return Arc::clone(&session.calibration);
    }
    process_calibration()
}

/// The process-wide calibration monitor, bypassing any installed session.
pub fn process_calibration() -> Arc<CalibrationMonitor> {
    static GLOBAL: OnceLock<Arc<CalibrationMonitor>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(CalibrationMonitor::default())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_stats::json::{from_str, to_string};

    /// A deterministic, drift-free standardized-residual cycle: one value
    /// at each PIT decile midpoint (`Phi^-1(0.05), Phi^-1(0.15), ...`),
    /// mean zero, hitting every reliability bin.
    const Z_CYCLE: [f64; 10] = [
        -1.6449, -1.0364, -0.6745, -0.3853, -0.1257, 0.1257, 0.3853, 0.6745, 1.0364, 1.6449,
    ];

    fn feed_calibrated(m: &CalibrationMonitor, n: usize) -> u64 {
        let mut alarms = 0;
        for i in 0..n {
            let z = Z_CYCLE[i % Z_CYCLE.len()];
            if m.observe("wifi", "indoor", 3.0, 1.5, 3.0 + 1.5 * z).is_some() {
                alarms += 1;
            }
        }
        alarms
    }

    #[test]
    fn calibrated_stream_never_alarms() {
        let m = CalibrationMonitor::default();
        assert_eq!(feed_calibrated(&m, 500), 0);
        let snap = m.snapshot();
        assert_eq!(snap.cells.len(), 1);
        let cell = &snap.cells[0];
        assert_eq!((cell.scheme.as_str(), cell.io.as_str()), ("wifi", "indoor"));
        assert_eq!(cell.n, 500);
        assert_eq!(cell.drift_alarms, 0);
        assert!(cell.mean_residual.abs() < 0.2, "residual {}", cell.mean_residual);
        // Coverage tracks the nominal quantiles to within bin resolution.
        for (q, cov) in cell.quantiles.iter().zip(&cell.coverage) {
            assert!((q - cov).abs() < 0.15, "coverage@{q} observed {cov}");
        }
        // The PIT histogram is roughly flat for a calibrated stream.
        let max = *cell.pit_counts.iter().max().unwrap() as f64;
        let min = *cell.pit_counts.iter().min().unwrap() as f64;
        assert!(max <= 3.0 * (min + 1.0), "PIT bins {:?}", cell.pit_counts);
    }

    #[test]
    fn optimistic_model_trips_drift_quickly() {
        let m = CalibrationMonitor::default();
        let mut first_alarm = None;
        for i in 0..100u64 {
            // Model claims 0.2 m ± 0.1 m; reality delivers ~4 m.
            if let Some(a) = m.observe("wifi", "outdoor", 0.2, 0.1, 4.0) {
                first_alarm = Some((i, a));
                break;
            }
        }
        let (i, alarm) = first_alarm.expect("stale model must alarm");
        assert!(i < 20, "alarm should fire within min_obs + slack, got epoch {i}");
        assert_eq!(alarm.direction, "under_predicted_error");
        assert!(alarm.statistic > m.config().cusum_lambda);
        assert_eq!(m.snapshot().cells[0].drift_alarms, 1);
    }

    #[test]
    fn pessimistic_model_alarms_the_other_way() {
        let m = CalibrationMonitor::default();
        let mut alarm = None;
        for _ in 0..100 {
            // Model claims 20 m ± 2 m; reality delivers 1 m.
            if let Some(a) = m.observe("cellular", "indoor", 20.0, 2.0, 1.0) {
                alarm = Some(a);
                break;
            }
        }
        assert_eq!(alarm.expect("must alarm").direction, "over_predicted_error");
    }

    #[test]
    fn alarms_are_rate_limited_by_cooldown() {
        let m = CalibrationMonitor::default();
        let mut alarms = 0u64;
        for _ in 0..200 {
            if m.observe("gps", "outdoor", 0.2, 0.1, 5.0).is_some() {
                alarms += 1;
            }
        }
        // Without the cooldown the CUSUM would re-trip every ~3
        // observations (≈60 alarms); with it, at most 1 per cooldown
        // window plus the initial alarm.
        let cfg = m.config();
        let max_expected = 200 / cfg.cooldown_obs + 1;
        assert!(alarms >= 2, "repeated drift keeps alarming, got {alarms}");
        assert!(alarms <= max_expected, "got {alarms}, expected <= {max_expected}");
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let m = CalibrationMonitor::default();
        m.observe("wifi", "indoor", f64::NAN, 1.0, 1.0);
        m.observe("wifi", "indoor", 1.0, 0.0, 1.0);
        m.observe("wifi", "indoor", 1.0, 1.0, f64::INFINITY);
        let cell = &m.snapshot().cells[0];
        assert_eq!(cell.n, 0);
        assert_eq!(cell.dropped, 3);
    }

    #[test]
    fn snapshot_is_sorted_and_round_trips() {
        let m = CalibrationMonitor::default();
        m.observe("wifi", "indoor", 3.0, 1.0, 3.0);
        m.observe("cellular", "outdoor", 8.0, 2.0, 7.0);
        m.observe("cellular", "indoor", 8.0, 2.0, 9.0);
        let snap = m.snapshot();
        let keys: Vec<(String, String)> =
            snap.cells.iter().map(|c| (c.scheme.clone(), c.io.clone())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "cells must be sorted by (scheme, io)");
        let back: CalibrationSnapshot = from_str(&to_string(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn jsonl_lines_absorb_back() {
        let m = CalibrationMonitor::default();
        feed_calibrated(&m, 40);
        let snap = m.snapshot();
        let mut back = CalibrationSnapshot::default();
        for line in snap.jsonl_lines() {
            let doc = Json::parse(&line).unwrap();
            assert!(back.absorb_jsonl(&doc).unwrap());
        }
        assert_eq!(back, snap);
        let other = Json::parse(r#"{"kind":"counter","name":"x","value":1}"#).unwrap();
        assert!(!back.absorb_jsonl(&other).unwrap());
    }

    #[test]
    fn snapshot_merge_is_count_weighted() {
        let a = CalibrationMonitor::default();
        feed_calibrated(&a, 30);
        a.observe("gps", "outdoor", 1.0, 0.5, 1.2);
        let b = CalibrationMonitor::default();
        feed_calibrated(&b, 10);
        b.observe("cellular", "indoor", 8.0, 2.0, 7.5);

        let merged = a.snapshot().merge(&b.snapshot()).unwrap();
        assert_eq!(merged.cells.len(), 3, "union of cells");
        let keys: Vec<(String, String)> =
            merged.cells.iter().map(|c| (c.scheme.clone(), c.io.clone())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "merged cells stay sorted");

        let wifi = merged
            .cells
            .iter()
            .find(|c| c.scheme == "wifi")
            .expect("matched cell survives");
        assert_eq!(wifi.n, 40);
        assert_eq!(wifi.pit_counts.iter().sum::<u64>(), 40);
        // The equivalent sequential feed produces the same counts/means.
        let seq = CalibrationMonitor::default();
        feed_calibrated(&seq, 30);
        feed_calibrated(&seq, 10);
        let seq_wifi = &seq
            .snapshot()
            .cells
            .iter()
            .find(|c| c.scheme == "wifi")
            .unwrap()
            .clone();
        assert_eq!(wifi.pit_counts, seq_wifi.pit_counts);
        assert!((wifi.mean_realized - seq_wifi.mean_realized).abs() < 1e-9);
        // Trailing CUSUM comes from the later operand.
        let b_wifi = b.snapshot().cells.iter().find(|c| c.scheme == "wifi").unwrap().clone();
        assert_eq!(wifi.cusum_pos, b_wifi.cusum_pos);

        // Structural mismatches are errors.
        let odd = CalibrationMonitor::new(CalibrationConfig {
            pit_bins: 3,
            ..CalibrationConfig::default()
        });
        odd.observe("wifi", "indoor", 3.0, 1.5, 3.0);
        assert!(a.snapshot().merge(&odd.snapshot()).is_err());
    }

    #[test]
    fn reset_clears_cells() {
        let m = CalibrationMonitor::default();
        m.observe("wifi", "indoor", 3.0, 1.0, 3.0);
        m.reset();
        assert!(m.snapshot().cells.is_empty());
    }

    #[test]
    #[should_panic(expected = "PIT bin")]
    fn zero_bins_rejected() {
        CalibrationMonitor::new(CalibrationConfig {
            pit_bins: 0,
            ..CalibrationConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "quantiles")]
    fn out_of_range_quantile_rejected() {
        CalibrationMonitor::new(CalibrationConfig {
            quantiles: vec![0.5, 1.0],
            ..CalibrationConfig::default()
        });
    }
}
