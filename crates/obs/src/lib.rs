//! `uniloc-obs` — the in-repo observability layer.
//!
//! The pipeline's core claim (per-scheme error can be predicted online and
//! used to arbitrate among schemes) is only debuggable when the pipeline
//! is not a black box: which scheme's confidence was miscalibrated, how
//! long fingerprint matching took, how the particle filter's spread
//! evolved. The hermetic-build policy (see `DESIGN.md`) forbids the
//! `tracing`/`metrics` crates, so this crate provides the slice the
//! workspace needs:
//!
//! * [`alloc`] — the allocation observatory: a counting
//!   `#[global_allocator]` wrapper attributing every heap operation to
//!   the innermost active span (exact, deterministic per-stage heap
//!   profiles and the `allocs_per_epoch` steady-state meter behind
//!   `PROF_alloc.json` and the `--alloc-budget` CI gate).
//! * [`trace`] — structured spans with key/value fields, a thread-safe
//!   [`Subscriber`] trait, a bounded [`RingCollector`], a [`JsonlExporter`]
//!   over `uniloc_stats`' byte-stable JSON writer, and a process-wide
//!   [`Dispatcher`] (see [`trace::global`]).
//! * [`metrics`] — named counters, gauges and fixed-bucket histograms with
//!   cheap atomic updates and a [`MetricsRegistry::snapshot`] that is
//!   deterministic in content ordering (see [`metrics::global_metrics`]).
//! * [`clock`] — the [`Clock`] abstraction: [`MonotonicClock`] for real
//!   timing, [`VirtualClock`] keyed to simulation epochs for
//!   deterministic sidecar content.
//! * [`calib`] — the online calibration monitor: per-scheme × environment
//!   PIT reliability bins, coverage/sharpness summaries and a CUSUM drift
//!   detector that raises `calib.drift` alarms when an error model goes
//!   stale (see [`calib::global_calibration`]).
//! * [`flight`] — the flight recorder: a bounded window of recent trace
//!   activity dumped as a byte-stable JSON postmortem on drift alarms,
//!   scheme-unavailability streaks or non-finite estimates (see
//!   [`flight::global_flight`]).
//! * [`fleet`] — the fleet observatory: sharded aggregation of retired
//!   session captures into one mergeable [`FleetSnapshot`], a
//!   deterministic span-count profiler (collapsed-stack + stage tree),
//!   and the SLO health plane behind `FLEET_HEALTH.json` and
//!   `uniloc inspect-fleet`.
//! * [`session`] — per-thread observability sessions for parallel sweeps:
//!   installing an [`ObsSession`] redirects every `global_*` accessor on
//!   the current thread to private state that can be captured and merged
//!   deterministically in job order afterward.
//!
//! # Determinism contract
//!
//! Instrumentation writes the sidecar and never the pipeline: no span,
//! counter or clock read feeds back into any estimate, weight or RNG
//! stream. The golden-trace tests (`tests/golden/`) and
//! `tests/determinism.rs` therefore pass unchanged with instrumentation
//! enabled at any level. Wall-clock values appear only in the
//! metrics/trace sidecar — and even those become deterministic when a
//! [`VirtualClock`] is installed.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use uniloc_obs::{RingCollector, Subscriber, TraceLevel};
//!
//! // Collect spans in memory through the global dispatcher.
//! let ring = Arc::new(RingCollector::new(128));
//! let d = uniloc_obs::trace::global();
//! d.set_subscriber(Some(ring.clone() as Arc<dyn Subscriber>));
//! d.set_level(Some(TraceLevel::Span));
//! {
//!     let _span = d.span("demo.stage").field("items", 3usize);
//! }
//! d.set_subscriber(None);
//! assert!(ring.events().iter().any(|e| e.name == "demo.stage"));
//!
//! // Metrics: counters / gauges / histograms with a deterministic snapshot.
//! let m = uniloc_obs::metrics::global_metrics();
//! m.counter("demo.epochs").inc();
//! m.histogram("demo.residual", uniloc_obs::metrics::RESIDUAL_BUCKETS_M).record(0.7);
//! let snapshot = m.snapshot();
//! assert!(snapshot.counters.iter().any(|(n, v)| n == "demo.epochs" && *v >= 1));
//! ```

pub mod alloc;
pub mod calib;
pub mod clock;
pub mod fleet;
pub mod flight;
pub mod metrics;
pub mod session;
pub mod trace;

pub use alloc::{CountingAlloc, TrackingGuard, STEADY_WARMUP_EPOCHS};
pub use calib::{
    global_calibration, process_calibration, CalibrationCell, CalibrationConfig,
    CalibrationMonitor, CalibrationSnapshot, DriftAlarm,
};
pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use fleet::{
    alloc_folded_lines, alloc_report, alloc_tree, evaluate_slos, folded_lines, health_report,
    profile_report, profile_tree, AllocNode, FleetAggregator, FleetSnapshot, ProfNode,
    SessionMeta, SloRow, SloTargets,
};
pub use flight::{global_flight, process_flight, FlightRecorder};
pub use metrics::{
    global_metrics, process_metrics, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot, DURATION_BUCKETS_NS, RESIDUAL_BUCKETS_M,
};
pub use session::{ObsSession, SessionCapture, SessionGuard};
pub use trace::{
    global, Dispatcher, FieldValue, JsonlExporter, MultiSubscriber, RingCollector, SpanGuard,
    StderrSubscriber, Subscriber, TraceEvent, TraceLevel,
};
