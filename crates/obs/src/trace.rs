//! The structured tracing facade: spans with key/value fields, a
//! thread-safe subscriber trait, a ring-buffer collector and a JSON-lines
//! exporter.
//!
//! The facade is intentionally tiny (the hermetic-build policy forbids the
//! `tracing` crate) but keeps its shape: instrumentation sites open a
//! [`SpanGuard`] (or emit a log event), a process-wide [`Dispatcher`]
//! filters by [`TraceLevel`] and forwards to at most one installed
//! [`Subscriber`] chain. When no subscriber is installed the facade is
//! nearly free: a span open/close is two atomic loads plus (when span
//! timing is enabled) one clock read and one histogram record into the
//! global [`MetricsRegistry`](crate::metrics::MetricsRegistry) — which is
//! how every `span.*` latency histogram in the metrics snapshot is
//! populated without any subscriber at all.
//!
//! Determinism contract: dispatching reads the clock and writes the
//! sidecar, never the pipeline state, so golden traces are unaffected by
//! any subscriber/level combination. With a
//! [`VirtualClock`](crate::clock::VirtualClock) installed the sidecar
//! itself becomes deterministic in content.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{global_metrics, DURATION_BUCKETS_NS};
use uniloc_stats::json::{Json, ToJson};

/// Event verbosity, coarsest first. `Span` is the most verbose level:
/// enabling it also enables everything above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Unrecoverable or wrong-answer conditions.
    Error,
    /// Suspicious but tolerated conditions.
    Warn,
    /// Progress messages (the `eprintln!` replacement).
    Info,
    /// Per-epoch diagnostic detail.
    Debug,
    /// Span open/close records with durations.
    Span,
}

impl TraceLevel {
    /// The level's lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Error => "error",
            TraceLevel::Warn => "warn",
            TraceLevel::Info => "info",
            TraceLevel::Debug => "debug",
            TraceLevel::Span => "span",
        }
    }

    /// Parses a level name; `off` parses as `None` (emit nothing).
    pub fn parse(s: &str) -> Result<Option<TraceLevel>, String> {
        match s {
            "off" => Ok(None),
            "error" => Ok(Some(TraceLevel::Error)),
            "warn" => Ok(Some(TraceLevel::Warn)),
            "info" => Ok(Some(TraceLevel::Info)),
            "debug" => Ok(Some(TraceLevel::Debug)),
            "span" => Ok(Some(TraceLevel::Span)),
            other => Err(format!(
                "unknown trace level `{other}` (expected off|error|warn|info|debug|span)"
            )),
        }
    }
}

/// A typed span/event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Float.
    Num(f64),
    /// String.
    Str(String),
}

impl ToJson for FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::Bool(b) => Json::Bool(*b),
            FieldValue::Int(i) => Json::Int(*i),
            FieldValue::Num(x) => Json::Num(*x),
            FieldValue::Str(s) => Json::Str(s.clone()),
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Bool(b) => write!(f, "{b}"),
            FieldValue::Int(i) => write!(f, "{i}"),
            FieldValue::Num(x) => write!(f, "{x}"),
            FieldValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Num(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One dispatched record: a log event (`duration_ns == None`) or a closed
/// span (`duration_ns == Some`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Verbosity of the record.
    pub level: TraceLevel,
    /// Span or event name (log events use `"log"`).
    pub name: String,
    /// Clock timestamp at emission (span close), ns.
    pub t_ns: u64,
    /// Span duration; `None` for instantaneous events.
    pub duration_ns: Option<u64>,
    /// Structured key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// The event as one compact JSON document (`kind` is `span` for
    /// closed spans, `event` otherwise).
    pub fn to_json(&self) -> Json {
        let kind = if self.duration_ns.is_some() { "span" } else { "event" };
        let mut pairs = vec![
            ("kind".to_owned(), Json::Str(kind.to_owned())),
            ("level".to_owned(), Json::Str(self.level.as_str().to_owned())),
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("t_ns".to_owned(), self.t_ns.to_json()),
        ];
        if let Some(d) = self.duration_ns {
            pairs.push(("duration_ns".to_owned(), d.to_json()));
        }
        if !self.fields.is_empty() {
            pairs.push((
                "fields".to_owned(),
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(pairs)
    }
}

/// Receives dispatched events. Implementations must be thread-safe: the
/// pipeline may emit from any thread.
pub trait Subscriber: Send + Sync {
    /// Handles one event.
    fn event(&self, event: &TraceEvent);

    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// A bounded in-memory collector: keeps the most recent `capacity` events,
/// dropping the oldest on overflow.
pub struct RingCollector {
    capacity: usize,
    buf: Mutex<VecDeque<TraceEvent>>,
    dropped: Mutex<u64>,
}

impl RingCollector {
    /// Creates a collector holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring collector needs capacity >= 1");
        RingCollector {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: Mutex::new(0),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring mutex").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock().expect("ring mutex")
    }

    /// Copies the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.lock().expect("ring mutex").iter().cloned().collect()
    }

    /// Drains the buffered events, oldest first. The eviction counter
    /// ([`dropped`](Self::dropped)) keeps its lifetime total; use
    /// [`reset`](Self::reset) to zero it too.
    pub fn take(&self) -> Vec<TraceEvent> {
        self.buf.lock().expect("ring mutex").drain(..).collect()
    }

    /// Clears the buffer AND the eviction counter — a factory-fresh ring,
    /// for back-to-back runs that must reproduce identical output.
    pub fn reset(&self) {
        self.buf.lock().expect("ring mutex").clear();
        *self.dropped.lock().expect("ring mutex") = 0;
    }
}

impl Subscriber for RingCollector {
    fn event(&self, event: &TraceEvent) {
        let mut buf = self.buf.lock().expect("ring mutex");
        if buf.len() == self.capacity {
            buf.pop_front();
            *self.dropped.lock().expect("ring mutex") += 1;
        }
        buf.push_back(event.clone());
    }
}

/// Writes each event as one compact JSON line, reusing `uniloc_stats`'
/// byte-stable writer.
pub struct JsonlExporter {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlExporter {
    /// Wraps any writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlExporter { out: Mutex::new(out) }
    }

    /// Creates (truncates) `path` and buffers writes to it.
    pub fn to_file(path: &str) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlExporter::new(Box::new(std::io::BufWriter::new(f))))
    }

    /// Appends one arbitrary JSON document as a line (used for the final
    /// metrics-snapshot lines).
    pub fn write_json(&self, doc: &Json) {
        let mut out = self.out.lock().expect("exporter mutex");
        let _ = writeln!(out, "{}", doc.to_string());
    }

    /// Appends one pre-serialized line.
    pub fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("exporter mutex");
        let _ = writeln!(out, "{line}");
    }
}

impl Subscriber for JsonlExporter {
    fn event(&self, event: &TraceEvent) {
        self.write_json(&event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("exporter mutex").flush();
    }
}

/// Prints human-readable progress to stderr: log events print their
/// message verbatim (the `eprintln!` replacement), other events print
/// `name k=v ...`. Span records are ignored regardless of level.
pub struct StderrSubscriber {
    max_level: TraceLevel,
}

impl StderrSubscriber {
    /// Prints events up to `max_level` (typically [`TraceLevel::Info`]).
    pub fn new(max_level: TraceLevel) -> Self {
        StderrSubscriber { max_level }
    }
}

impl Subscriber for StderrSubscriber {
    fn event(&self, event: &TraceEvent) {
        if event.level > self.max_level || event.duration_ns.is_some() {
            return;
        }
        if event.name == "log" {
            if let Some((_, msg)) = event.fields.iter().find(|(k, _)| k == "message") {
                eprintln!("{msg}");
                return;
            }
        }
        let fields: Vec<String> =
            event.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        eprintln!("[{}] {} {}", event.level.as_str(), event.name, fields.join(" "));
    }
}

/// Fans events out to several subscribers.
pub struct MultiSubscriber {
    subscribers: Vec<Arc<dyn Subscriber>>,
}

impl MultiSubscriber {
    /// Bundles the given subscribers.
    pub fn new(subscribers: Vec<Arc<dyn Subscriber>>) -> Self {
        MultiSubscriber { subscribers }
    }
}

impl Subscriber for MultiSubscriber {
    fn event(&self, event: &TraceEvent) {
        for s in &self.subscribers {
            s.event(event);
        }
    }

    fn flush(&self) {
        for s in &self.subscribers {
            s.flush();
        }
    }
}

/// Threshold encoding for the dispatcher's atomic level: 0 = off,
/// 1..=5 = emit up to Error..Span.
fn threshold(level: Option<TraceLevel>) -> u8 {
    match level {
        None => 0,
        Some(l) => l as u8 + 1,
    }
}

/// Routes events from instrumentation sites to the installed subscriber,
/// filtered by level, timestamped by the installed clock.
pub struct Dispatcher {
    level: AtomicU8,
    span_timings: AtomicBool,
    subscriber: RwLock<Option<Arc<dyn Subscriber>>>,
    clock: RwLock<Arc<dyn Clock>>,
}

impl Dispatcher {
    fn new() -> Self {
        Dispatcher {
            level: AtomicU8::new(threshold(Some(TraceLevel::Info))),
            span_timings: AtomicBool::new(true),
            subscriber: RwLock::new(None),
            clock: RwLock::new(Arc::new(MonotonicClock::new())),
        }
    }

    /// Installs (or removes, with `None`) the subscriber.
    pub fn set_subscriber(&self, s: Option<Arc<dyn Subscriber>>) {
        *self.subscriber.write().expect("subscriber lock") = s;
    }

    /// The subscriber events should reach right now: the current thread's
    /// [`ObsSession`](crate::session::ObsSession) override when one is
    /// installed (its `None` means "drop events"), otherwise the
    /// process-wide subscriber.
    fn active_subscriber(&self) -> Option<Arc<dyn Subscriber>> {
        if let Some(session) = crate::session::current() {
            return session.subscriber.clone();
        }
        self.subscriber.read().expect("subscriber lock").clone()
    }

    /// The clock timestamps should come from: the session clock when the
    /// current thread's session sets one, otherwise the installed clock.
    fn active_clock(&self) -> Arc<dyn Clock> {
        if let Some(session) = crate::session::current() {
            if let Some(clock) = &session.clock {
                return Arc::clone(clock);
            }
        }
        Arc::clone(&*self.clock.read().expect("clock lock"))
    }

    /// Sets the verbosity threshold; `None` means off.
    pub fn set_level(&self, level: Option<TraceLevel>) {
        self.level.store(threshold(level), Ordering::Relaxed);
    }

    /// Whether events at `level` would currently be dispatched to a
    /// subscriber.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        (level as u8) < self.level.load(Ordering::Relaxed) && self.active_subscriber().is_some()
    }

    /// Enables/disables recording span durations into the global metrics
    /// registry (`span.<name>` histograms). On by default.
    pub fn set_span_timings(&self, on: bool) {
        self.span_timings.store(on, Ordering::Relaxed);
    }

    /// Whether spans should currently record duration samples: the current
    /// thread's [`ObsSession`](crate::session::ObsSession) override when it
    /// sets one (the obs-stub mode turns timing off per session without
    /// racing other threads on the process-wide flag), otherwise the
    /// process-wide setting.
    fn span_timings_enabled(&self) -> bool {
        if let Some(session) = crate::session::current() {
            if let Some(on) = session.span_timings {
                return on;
            }
        }
        self.span_timings.load(Ordering::Relaxed)
    }

    /// Installs the clock used to timestamp events and measure spans.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *self.clock.write().expect("clock lock") = clock;
    }

    /// Current clock time, ns.
    pub fn now_ns(&self) -> u64 {
        self.active_clock().now_ns()
    }

    /// Drives an installed [`VirtualClock`](crate::clock::VirtualClock) to
    /// simulation time `t` seconds; a no-op under a monotonic clock. The
    /// pipeline calls this once per epoch.
    pub fn sync_virtual_clock(&self, t: f64) {
        let clock = self.active_clock();
        if let Some(v) = clock.as_virtual() {
            v.set_seconds(t);
        }
    }

    /// Emits an instantaneous event.
    pub fn event(&self, level: TraceLevel, name: &str, fields: Vec<(String, FieldValue)>) {
        if (level as u8) >= self.level.load(Ordering::Relaxed) {
            return;
        }
        if let Some(sub) = self.active_subscriber() {
            sub.event(&TraceEvent {
                level,
                name: name.to_owned(),
                t_ns: self.now_ns(),
                duration_ns: None,
                fields,
            });
        }
    }

    /// Emits a progress message at `Info` (the `eprintln!` replacement).
    pub fn log(&self, level: TraceLevel, message: String) {
        self.event(level, "log", vec![("message".to_owned(), FieldValue::Str(message))]);
    }

    /// Opens a span; the returned guard emits a span record (and a
    /// `span.<name>` duration sample) when dropped. When allocation
    /// tracking is on (see [`crate::alloc`]) a timed span also opens an
    /// attribution frame so heap operations inside it are charged to its
    /// stage; the guard's own bookkeeping runs under an attribution pause
    /// so observability overhead stays out of the profile.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let emit = self.enabled(TraceLevel::Span);
        let time = self.span_timings_enabled();
        let track = crate::alloc::tracking_active();
        let _pause = track.then(crate::alloc::pause);
        if !emit && !time {
            return SpanGuard {
                dispatcher: self,
                name: String::new(),
                start_ns: 0,
                fields: Vec::new(),
                emit,
                time,
                alloc: None,
            };
        }
        let alloc = if time && track { crate::alloc::span_open(name) } else { None };
        SpanGuard {
            dispatcher: self,
            name: name.to_owned(),
            start_ns: self.now_ns(),
            fields: Vec::new(),
            emit,
            time,
            alloc,
        }
    }

    /// Flushes the active subscriber.
    pub fn flush(&self) {
        if let Some(sub) = self.active_subscriber() {
            sub.flush();
        }
    }
}

/// An open span; closes (and reports) on drop.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard<'a> {
    dispatcher: &'a Dispatcher,
    name: String,
    start_ns: u64,
    fields: Vec<(String, FieldValue)>,
    emit: bool,
    time: bool,
    alloc: Option<crate::alloc::SpanToken>,
}

impl SpanGuard<'_> {
    /// Attaches a key/value field to the span record.
    pub fn field(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        if self.emit {
            self.fields.push((key.to_owned(), value.into()));
        }
        self
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        // Close the allocation-attribution frame first, and keep the
        // guard's own teardown (histogram-name formatting, the span-name
        // buffer's free) out of the enclosing span's heap profile.
        let _pause = crate::alloc::tracking_active().then(crate::alloc::pause);
        if let Some(token) = self.alloc.take() {
            crate::alloc::span_close(token);
        }
        if !self.emit && !self.time {
            return;
        }
        let d = self.dispatcher;
        let end_ns = d.now_ns();
        let duration_ns = end_ns.saturating_sub(self.start_ns);
        if self.time {
            global_metrics()
                .histogram(&format!("span.{}", self.name), DURATION_BUCKETS_NS)
                .record_ns(duration_ns);
        }
        if self.emit {
            if let Some(sub) = d.active_subscriber() {
                sub.event(&TraceEvent {
                    level: TraceLevel::Span,
                    name: std::mem::take(&mut self.name),
                    t_ns: end_ns,
                    duration_ns: Some(duration_ns),
                    fields: std::mem::take(&mut self.fields),
                });
            }
        }
        drop(std::mem::take(&mut self.name));
    }
}

/// The process-wide dispatcher every instrumentation site reports to.
pub fn global() -> &'static Dispatcher {
    static GLOBAL: OnceLock<Dispatcher> = OnceLock::new();
    GLOBAL.get_or_init(Dispatcher::new)
}

/// Formats and emits an `Info` progress message through the global
/// dispatcher — the drop-in replacement for ad-hoc `eprintln!` progress
/// output.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::trace::global().log($crate::TraceLevel::Info, format!($($arg)*))
    };
}

/// Formats and emits a `Warn` message through the global dispatcher.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::trace::global().log($crate::TraceLevel::Warn, format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(level: TraceLevel, name: &str) -> TraceEvent {
        TraceEvent {
            level,
            name: name.to_owned(),
            t_ns: 7,
            duration_ns: None,
            fields: vec![("k".to_owned(), FieldValue::Int(1))],
        }
    }

    #[test]
    fn level_parse_round_trips() {
        for l in [
            TraceLevel::Error,
            TraceLevel::Warn,
            TraceLevel::Info,
            TraceLevel::Debug,
            TraceLevel::Span,
        ] {
            assert_eq!(TraceLevel::parse(l.as_str()).unwrap(), Some(l));
        }
        assert_eq!(TraceLevel::parse("off").unwrap(), None);
        assert!(TraceLevel::parse("loud").is_err());
    }

    #[test]
    fn ring_collector_caps_and_tracks_drops() {
        let ring = RingCollector::new(3);
        for i in 0..5 {
            ring.event(&event(TraceLevel::Info, &format!("e{i}")));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let names: Vec<String> = ring.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
        assert_eq!(ring.take().len(), 3);
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_exporter_emits_parseable_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let exporter = JsonlExporter::new(Box::new(SharedBuf(Arc::clone(&buf))));
        exporter.event(&event(TraceLevel::Debug, "hello"));
        exporter.event(&TraceEvent {
            level: TraceLevel::Span,
            name: "engine.update".into(),
            t_ns: 10,
            duration_ns: Some(3),
            fields: vec![],
        });
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").unwrap().as_str().unwrap(), "event");
        assert_eq!(first.get("name").unwrap().as_str().unwrap(), "hello");
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("kind").unwrap().as_str().unwrap(), "span");
        assert_eq!(second.get("duration_ns").unwrap().as_i64().unwrap(), 3);
    }

    #[test]
    fn dispatcher_filters_by_level() {
        // A private dispatcher (not the global one) keeps this test
        // independent of other tests mutating global state.
        let d = Dispatcher::new();
        let ring = Arc::new(RingCollector::new(16));
        d.set_subscriber(Some(ring.clone() as Arc<dyn Subscriber>));
        d.set_level(Some(TraceLevel::Info));
        d.event(TraceLevel::Info, "kept", vec![]);
        d.event(TraceLevel::Debug, "filtered", vec![]);
        assert_eq!(ring.len(), 1);
        d.set_level(None);
        d.event(TraceLevel::Error, "also filtered", vec![]);
        assert_eq!(ring.len(), 1);
        assert!(!d.enabled(TraceLevel::Error));
    }

    #[test]
    fn multi_subscriber_fans_out() {
        let a = Arc::new(RingCollector::new(4));
        let b = Arc::new(RingCollector::new(4));
        let multi = MultiSubscriber::new(vec![
            a.clone() as Arc<dyn Subscriber>,
            b.clone() as Arc<dyn Subscriber>,
        ]);
        multi.event(&event(TraceLevel::Info, "x"));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn span_records_duration_histogram() {
        // The global dispatcher has span timing on by default; spans feed
        // `span.<name>` histograms even with no subscriber installed.
        let name = "obs.test.span_records_duration";
        {
            let _g = global().span(name).field("k", 1i64);
        }
        let snap = global_metrics().snapshot();
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == &format!("span.{name}"))
            .expect("span histogram registered");
        assert!(h.count() >= 1);
    }

    /// Count of samples in the installed-target `span.<name>` histogram.
    fn span_samples(snap: &crate::metrics::MetricsSnapshot, name: &str) -> u64 {
        snap.histograms
            .iter()
            .find(|(n, _)| n == &format!("span.{name}"))
            .map(|(_, h)| h.count())
            .unwrap_or(0)
    }

    #[test]
    fn session_span_timings_override_beats_global_flag() {
        use crate::session::ObsSession;
        // Global flag ON (the default), session override OFF: no sample.
        let mut session = ObsSession::isolated();
        session.span_timings = Some(false);
        let off = Arc::new(session);
        {
            let _g = crate::session::install(Arc::clone(&off));
            let _s = global().span("obs.test.override_off");
        }
        assert_eq!(span_samples(&off.capture().metrics, "obs.test.override_off"), 0);

        // Session override ON records into the session even while the
        // process-wide flag is OFF: `Some(true)` wins over the global.
        global().set_span_timings(false);
        let mut session = ObsSession::isolated();
        session.span_timings = Some(true);
        let on = Arc::new(session);
        {
            let _g = crate::session::install(Arc::clone(&on));
            let _s = global().span("obs.test.override_on");
        }
        global().set_span_timings(true);
        assert_eq!(span_samples(&on.capture().metrics, "obs.test.override_on"), 1);
    }

    #[test]
    fn session_none_defers_to_global_and_guard_restores_on_drop() {
        use crate::session::ObsSession;
        // `span_timings: None` (the isolated default) defers to the
        // process-wide flag in both positions.
        let defer = Arc::new(ObsSession::isolated());
        assert_eq!(defer.span_timings, None);
        {
            let _g = crate::session::install(Arc::clone(&defer));
            let _s = global().span("obs.test.defer_global_on");
        }
        assert_eq!(span_samples(&defer.capture().metrics, "obs.test.defer_global_on"), 1);

        // Once the install guard drops, the session's override stops
        // applying: timing lands in the process registry again.
        let stub = Arc::new(ObsSession::stubbed());
        {
            let _g = crate::session::install(Arc::clone(&stub));
            let _s = global().span("obs.test.restore_inside");
        }
        let name = "obs.test.restore_after_drop";
        {
            let _s = global().span(name);
        }
        let process = global_metrics().snapshot();
        assert!(
            span_samples(&process, name) >= 1,
            "global flag applies again after the session guard drops"
        );
        assert!(
            !process
                .histograms
                .iter()
                .any(|(n, _)| n == "span.obs.test.restore_inside"),
            "stubbed-session span must not leak into the process registry"
        );
    }

    #[test]
    fn stubbed_session_suppresses_timing_without_racing_global_state() {
        use crate::session::ObsSession;
        // A stubbed session turns timing off per-session while the
        // process-wide flag stays untouched — the obs-stub mode's whole
        // point (no cross-thread races on the global flag).
        let stub = Arc::new(ObsSession::stubbed());
        assert_eq!(stub.span_timings, Some(false));
        {
            let _g = crate::session::install(Arc::clone(&stub));
            let _s = global().span("obs.test.stub_span");
            assert!(!global().span_timings_enabled());
        }
        assert!(
            global().span_timings.load(Ordering::Relaxed),
            "process-wide flag unchanged by the stubbed session"
        );
        assert_eq!(stub.capture(), crate::session::SessionCapture::default());
    }

    #[test]
    fn virtual_clock_makes_span_timestamps_deterministic() {
        let d = Dispatcher::new();
        let clock = Arc::new(crate::clock::VirtualClock::new());
        d.set_clock(clock.clone());
        d.set_level(Some(TraceLevel::Span));
        let ring = Arc::new(RingCollector::new(8));
        d.set_subscriber(Some(ring.clone() as Arc<dyn Subscriber>));
        d.sync_virtual_clock(2.0);
        d.event(TraceLevel::Info, "tick", vec![]);
        let e = &ring.events()[0];
        assert_eq!(e.t_ns, 2_000_000_000);
    }

    #[test]
    fn stderr_subscriber_ignores_spans() {
        // Only exercises the filter logic (output goes to stderr).
        let s = StderrSubscriber::new(TraceLevel::Info);
        s.event(&TraceEvent {
            level: TraceLevel::Span,
            name: "noisy".into(),
            t_ns: 0,
            duration_ns: Some(1),
            fields: vec![],
        });
        s.event(&event(TraceLevel::Debug, "too detailed"));
    }
}
