//! The fleet observatory: sharded telemetry aggregation over per-session
//! captures, a deterministic span-count profiler, and an SLO health plane.
//!
//! A fleet run retires thousands of isolated
//! [`ObsSession`](crate::session::ObsSession) captures in lane order. This
//! module folds them into one [`FleetSnapshot`] through a fixed number of
//! *shards* (a retired session folds into shard `lane % shards`, and the
//! final snapshot merges the shards): the shard merge is the same algebra
//! as the per-shard fold, so the result is independent of shard count and
//! of which worker retired which session — the property
//! `tests/fleet_proptests.rs` holds.
//!
//! # Merge algebra
//!
//! Every aggregated quantity is chosen so the merge is **associative and
//! commutative, exactly**:
//!
//! * counters and bucket counts are `u64` sums;
//! * value sums are *fixed-point micro-units* in `i128`
//!   ([`micro`]) — float addition is not associative, integer addition is;
//! * gone are last-writer-wins gauges: the fleet level keeps only
//!   mergeable shapes (counts, sparse histograms, top-K exemplars);
//! * the worst-session exemplar list is a top-K selection under a total
//!   order (mean error descending, lane ascending), and top-K selection
//!   under a total order commutes with merging.
//!
//! # Profiler determinism
//!
//! Fleet sessions run under a per-session
//! [`VirtualClock`](crate::clock::VirtualClock) synced once per epoch, so
//! every intra-epoch span has *zero duration* — deterministic but useless
//! as a timing. The profiler therefore accounts **invocation counts**, not
//! nanoseconds: the `span.*` histogram counts are exact integers, byte
//! identical at any worker count. The collapsed-stack output
//! (`PROF_fleet.folded`) and stage tree (`PROF_fleet.json`) are flamegraph
//! shaped with call counts as values.

use std::collections::BTreeMap;

use crate::session::SessionCapture;
use uniloc_stats::json::{field, FromJson, Json, JsonError, ToJson};

/// Bucket upper bounds for per-session mean localization error, meters.
pub const ERROR_BUCKETS_M: &[f64] =
    &[0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 7.0, 10.0, 15.0, 20.0, 30.0, 50.0];

/// Default shard count for [`FleetAggregator::new`].
pub const DEFAULT_SHARDS: usize = 8;

/// Default worst-session exemplar count kept per snapshot (and per
/// shard); override per snapshot with [`FleetSnapshot::with_exemplar_cap`]
/// (the CLI's `--top-k`).
pub const EXEMPLAR_CAP: usize = 8;

/// A finite value in fixed-point micro-units (`v * 1e6`, rounded). Integer
/// micro-units make fleet-level sums associative where `f64` sums are not.
pub fn micro(v: f64) -> i64 {
    (v * 1e6).round() as i64
}

/// A sparse fixed-point histogram over a caller-supplied bound table:
/// only touched buckets are stored, the value sum is integer micro-units,
/// and the merge is exact bucket-wise addition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseHist {
    /// Bucket index → count. Index `i < bounds.len()` covers
    /// `v <= bounds[i]` (first match); index `bounds.len()` is overflow.
    pub counts: BTreeMap<usize, u64>,
    /// Sum of recorded values in micro-units.
    pub sum_micro: i128,
    /// Non-finite values rejected.
    pub dropped: u64,
}

impl SparseHist {
    /// Records one value against `bounds` (ascending upper bounds, the
    /// same table every merge partner must use).
    pub fn record(&mut self, bounds: &[f64], v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        let idx = bounds.partition_point(|b| v > *b);
        *self.counts.entry(idx).or_insert(0) += 1;
        self.sum_micro += micro(v) as i128;
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Exact merge: bucket-wise `u64` addition plus integer sum addition —
    /// associative and commutative by construction.
    pub fn merge(&self, other: &SparseHist) -> SparseHist {
        let mut counts = self.counts.clone();
        for (&i, &c) in &other.counts {
            *counts.entry(i).or_insert(0) += c;
        }
        SparseHist {
            counts,
            sum_micro: self.sum_micro + other.sum_micro,
            dropped: self.dropped + other.dropped,
        }
    }

    /// Densifies against `bounds` for serialization:
    /// `(dense counts, mean value)`.
    pub fn dense(&self, bounds: &[f64]) -> (Vec<u64>, Option<f64>) {
        let mut dense = vec![0u64; bounds.len() + 1];
        for (&i, &c) in &self.counts {
            if let Some(slot) = dense.get_mut(i) {
                *slot = c;
            }
        }
        let n = self.count();
        let mean = (n > 0).then(|| self.sum_micro as f64 / 1e6 / n as f64);
        (dense, mean)
    }
}

/// One retired session's identity and summary facts, as the aggregator
/// needs them. The caller (the fleet load generator) builds this from its
/// [`SessionSpec`]-equivalent plus the record summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// Unique fleet lane.
    pub lane: u64,
    /// Display name.
    pub name: String,
    /// Walker persona (cohort axis 1).
    pub persona: String,
    /// Device profile (cohort axis 2).
    pub device: String,
    /// Venue / scenario name (cohort axis 3).
    pub venue: String,
    /// Whether the session walked under a fault plan.
    pub faulted: bool,
    /// Epochs recorded.
    pub epochs: u64,
    /// Mean fused localization error over the walk, meters.
    pub mean_error_m: Option<f64>,
    /// Non-finite fused estimates observed.
    pub nonfinite: u64,
    /// Schemes the session ever quarantined.
    pub quarantined: Vec<String>,
}

impl SessionMeta {
    /// The session's cohort key: `persona/device/venue`.
    pub fn cohort(&self) -> String {
        format!("{}/{}/{}", self.persona, self.device, self.venue)
    }
}

/// Per-cohort (persona × device × venue) aggregate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CohortStats {
    /// Sessions retired in the cohort.
    pub sessions: u64,
    /// Epochs recorded across them.
    pub epochs: u64,
    /// Sessions under a fault plan.
    pub faulted: u64,
    /// Sessions that quarantined at least one scheme.
    pub quarantined: u64,
    /// Calibration drift alarms raised.
    pub drift_alarms: u64,
    /// Flight-recorder postmortems dumped.
    pub flight_dumps: u64,
    /// Non-finite fused estimates.
    pub nonfinite: u64,
    /// Per-session mean error distribution ([`ERROR_BUCKETS_M`]).
    pub error_hist: SparseHist,
}

impl CohortStats {
    fn merge(&self, other: &CohortStats) -> CohortStats {
        CohortStats {
            sessions: self.sessions + other.sessions,
            epochs: self.epochs + other.epochs,
            faulted: self.faulted + other.faulted,
            quarantined: self.quarantined + other.quarantined,
            drift_alarms: self.drift_alarms + other.drift_alarms,
            flight_dumps: self.flight_dumps + other.flight_dumps,
            nonfinite: self.nonfinite + other.nonfinite,
            error_hist: self.error_hist.merge(&other.error_hist),
        }
    }
}

/// One worst-session exemplar: enough identity to find the session's row
/// (and its flight-recorder postmortems) in `FLEET.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Fleet lane (links to the `FLEET.json` row of the same lane).
    pub lane: u64,
    /// Session display name.
    pub name: String,
    /// Mean fused error in micro-meters (the ranking key; fixed point so
    /// the top-K order is total).
    pub mean_error_micro: i64,
    /// Epochs recorded.
    pub epochs: u64,
    /// Flight-recorder postmortem lines the session captured — the link
    /// target: `uniloc inspect-flight` over the session's sidecar shows
    /// exactly these.
    pub flight_postmortems: u64,
    /// Schemes the session quarantined.
    pub quarantined: Vec<String>,
}

/// The exemplar total order: worst (largest mean error) first, ties by
/// lane ascending. Total because the key is integer.
fn exemplar_key(e: &Exemplar) -> (i64, u64) {
    (-e.mean_error_micro, e.lane)
}

/// Top-K under the total order; associative/commutative as a merge.
fn top_k(mut all: Vec<Exemplar>, k: usize) -> Vec<Exemplar> {
    all.sort_by_key(exemplar_key);
    all.dedup_by_key(|e| e.lane);
    all.truncate(k);
    all
}

/// One fleet-wide (or one shard's) aggregate. The merge of two snapshots
/// is field-wise and exact — see the module docs for the algebra.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Worst-session exemplars kept (the configurable top-K; merging
    /// takes the larger partner's cap so a widened cap survives folds).
    pub exemplar_cap: usize,
    /// Sessions folded in.
    pub sessions: u64,
    /// Epochs recorded across them.
    pub epochs: u64,
    /// Sessions under a fault plan.
    pub faulted: u64,
    /// Sessions that quarantined at least one scheme.
    pub quarantined_sessions: u64,
    /// Non-finite fused estimates.
    pub nonfinite: u64,
    /// Every session counter, summed by name (`pipeline.epochs`,
    /// `engine.scheme.available.<id>`, `quarantine.tripped.<id>`,
    /// `calib.drift_alarms`, `flight.dumps`, ...).
    pub counters: BTreeMap<String, u64>,
    /// `span.<name>` invocation counts from the session captures.
    pub span_counts: BTreeMap<String, u64>,
    /// Per-session mean error distribution ([`ERROR_BUCKETS_M`]).
    pub error_hist: SparseHist,
    /// Per-cohort breakdown, keyed `persona/device/venue`.
    pub cohorts: BTreeMap<String, CohortStats>,
    /// The [`EXEMPLAR_CAP`] worst sessions by mean error.
    pub exemplars: Vec<Exemplar>,
}

impl Default for FleetSnapshot {
    fn default() -> Self {
        FleetSnapshot {
            exemplar_cap: EXEMPLAR_CAP,
            sessions: 0,
            epochs: 0,
            faulted: 0,
            quarantined_sessions: 0,
            nonfinite: 0,
            counters: BTreeMap::new(),
            span_counts: BTreeMap::new(),
            error_hist: SparseHist::default(),
            cohorts: BTreeMap::new(),
            exemplars: Vec::new(),
        }
    }
}

impl FleetSnapshot {
    /// An empty snapshot keeping the worst `cap` exemplars (`0` keeps
    /// [`EXEMPLAR_CAP`]).
    pub fn with_exemplar_cap(cap: usize) -> FleetSnapshot {
        FleetSnapshot {
            exemplar_cap: if cap == 0 { EXEMPLAR_CAP } else { cap },
            ..FleetSnapshot::default()
        }
    }

    /// Folds one retired session into this snapshot.
    pub fn observe(&mut self, meta: &SessionMeta, capture: &SessionCapture) {
        self.sessions += 1;
        self.epochs += meta.epochs;
        self.faulted += u64::from(meta.faulted);
        self.quarantined_sessions += u64::from(!meta.quarantined.is_empty());
        self.nonfinite += meta.nonfinite;
        for (name, v) in &capture.metrics.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &capture.metrics.histograms {
            if let Some(span) = name.strip_prefix("span.") {
                *self.span_counts.entry(span.to_owned()).or_insert(0) += h.count();
            }
        }
        if let Some(err) = meta.mean_error_m {
            self.error_hist.record(ERROR_BUCKETS_M, err);
        }

        let counter = |name: &str| {
            capture.metrics.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
        };
        let cohort = self.cohorts.entry(meta.cohort()).or_default();
        cohort.sessions += 1;
        cohort.epochs += meta.epochs;
        cohort.faulted += u64::from(meta.faulted);
        cohort.quarantined += u64::from(!meta.quarantined.is_empty());
        cohort.drift_alarms += counter("calib.drift_alarms");
        cohort.flight_dumps += counter("flight.dumps");
        cohort.nonfinite += meta.nonfinite;
        if let Some(err) = meta.mean_error_m {
            cohort.error_hist.record(ERROR_BUCKETS_M, err);
        }

        if let Some(err) = meta.mean_error_m.filter(|e| e.is_finite()) {
            let mut pool = std::mem::take(&mut self.exemplars);
            pool.push(Exemplar {
                lane: meta.lane,
                name: meta.name.clone(),
                mean_error_micro: micro(err),
                epochs: meta.epochs,
                flight_postmortems: capture.flight_lines.len() as u64,
                quarantined: meta.quarantined.clone(),
            });
            self.exemplars = top_k(pool, self.exemplar_cap);
        }
    }

    /// Exact field-wise merge (associative and commutative; property
    /// tested).
    pub fn merge(&self, other: &FleetSnapshot) -> FleetSnapshot {
        let mut counters = self.counters.clone();
        for (name, v) in &other.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        let mut span_counts = self.span_counts.clone();
        for (name, v) in &other.span_counts {
            *span_counts.entry(name.clone()).or_insert(0) += v;
        }
        let mut cohorts = self.cohorts.clone();
        for (key, stats) in &other.cohorts {
            let merged = match cohorts.get(key) {
                Some(mine) => mine.merge(stats),
                None => stats.clone(),
            };
            cohorts.insert(key.clone(), merged);
        }
        let mut exemplars = self.exemplars.clone();
        exemplars.extend(other.exemplars.iter().cloned());
        let exemplar_cap = self.exemplar_cap.max(other.exemplar_cap);
        FleetSnapshot {
            exemplar_cap,
            sessions: self.sessions + other.sessions,
            epochs: self.epochs + other.epochs,
            faulted: self.faulted + other.faulted,
            quarantined_sessions: self.quarantined_sessions + other.quarantined_sessions,
            nonfinite: self.nonfinite + other.nonfinite,
            counters,
            span_counts,
            error_hist: self.error_hist.merge(&other.error_hist),
            cohorts,
            exemplars: top_k(exemplars, exemplar_cap),
        }
    }

    /// The summed value of one counter (0 when never seen).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Steady-state heap allocations per epoch: the exact integer ratio
    /// `alloc.steady.allocs / alloc.steady_epochs` from the allocation
    /// observatory (`uniloc_obs::alloc`); 0 when no steady epochs were
    /// tracked. Both operands are plain summed counters, so the meter
    /// merges across sessions and shards exactly.
    pub fn allocs_per_epoch(&self) -> f64 {
        let epochs = self.counter("alloc.steady_epochs");
        if epochs == 0 {
            return 0.0;
        }
        self.counter("alloc.steady.allocs") as f64 / epochs as f64
    }

    /// Per-scheme availability: scheme →
    /// `(available epochs, availability fraction)` from the
    /// `engine.scheme.available.<id>` counters over `pipeline.epochs`.
    pub fn availability(&self) -> BTreeMap<String, (u64, f64)> {
        let denom = self.counter("pipeline.epochs").max(self.epochs);
        let mut out = BTreeMap::new();
        for (name, v) in &self.counters {
            if let Some(id) = name.strip_prefix("engine.scheme.available.") {
                let frac = if denom > 0 { *v as f64 / denom as f64 } else { 0.0 };
                out.insert(id.to_owned(), (*v, frac));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Snapshot serialization — the checkpoint-resident form
// ---------------------------------------------------------------------------
//
// A fleet checkpoint must carry the aggregate of every *retired* session,
// because resume only replays the *resident* ones. These impls are exact:
// every count survives as an integer (`sum_micro` travels as a decimal
// string — i128 overflows `Json::Int`), so
// `restore(checkpoint).merge(post_resume)` equals the uninterrupted fold
// byte for byte. Round-trip fidelity is property-tested in
// `tests/fleet_properties.rs`.

impl ToJson for SparseHist {
    fn to_json(&self) -> Json {
        let counts = self
            .counts
            .iter()
            .map(|(&i, &c)| Json::Arr(vec![i.to_json(), c.to_json()]))
            .collect();
        Json::Obj(vec![
            ("counts".into(), Json::Arr(counts)),
            ("sum_micro".into(), Json::Str(self.sum_micro.to_string())),
            ("dropped".into(), self.dropped.to_json()),
        ])
    }
}

impl FromJson for SparseHist {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let pairs: Vec<Json> = field(json, "counts")?;
        let mut counts = BTreeMap::new();
        for p in &pairs {
            let pair = p.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                JsonError::new("sparse histogram bucket must be an [index, count] pair")
            })?;
            counts.insert(usize::from_json(&pair[0])?, u64::from_json(&pair[1])?);
        }
        let sum: String = field(json, "sum_micro")?;
        Ok(SparseHist {
            counts,
            sum_micro: sum
                .parse::<i128>()
                .map_err(|e| JsonError::new(format!("sum_micro `{sum}`: {e}")))?,
            dropped: field(json, "dropped")?,
        })
    }
}

impl ToJson for CohortStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sessions".into(), self.sessions.to_json()),
            ("epochs".into(), self.epochs.to_json()),
            ("faulted".into(), self.faulted.to_json()),
            ("quarantined".into(), self.quarantined.to_json()),
            ("drift_alarms".into(), self.drift_alarms.to_json()),
            ("flight_dumps".into(), self.flight_dumps.to_json()),
            ("nonfinite".into(), self.nonfinite.to_json()),
            ("error_hist".into(), self.error_hist.to_json()),
        ])
    }
}

impl FromJson for CohortStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(CohortStats {
            sessions: field(json, "sessions")?,
            epochs: field(json, "epochs")?,
            faulted: field(json, "faulted")?,
            quarantined: field(json, "quarantined")?,
            drift_alarms: field(json, "drift_alarms")?,
            flight_dumps: field(json, "flight_dumps")?,
            nonfinite: field(json, "nonfinite")?,
            error_hist: field(json, "error_hist")?,
        })
    }
}

impl ToJson for Exemplar {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("lane".into(), self.lane.to_json()),
            ("name".into(), Json::Str(self.name.clone())),
            ("mean_error_micro".into(), Json::Int(self.mean_error_micro)),
            ("epochs".into(), self.epochs.to_json()),
            ("flight_postmortems".into(), self.flight_postmortems.to_json()),
            (
                "quarantined".into(),
                Json::Arr(self.quarantined.iter().cloned().map(Json::Str).collect()),
            ),
        ])
    }
}

impl FromJson for Exemplar {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let quarantined: Vec<Json> = field(json, "quarantined")?;
        Ok(Exemplar {
            lane: field(json, "lane")?,
            name: field(json, "name")?,
            mean_error_micro: field(json, "mean_error_micro")?,
            epochs: field(json, "epochs")?,
            flight_postmortems: field(json, "flight_postmortems")?,
            quarantined: quarantined
                .iter()
                .map(String::from_json)
                .collect::<Result<_, _>>()
                .map_err(|e| JsonError::new(format!("field `quarantined`: {e}")))?,
        })
    }
}

fn str_map_to_json(map: &BTreeMap<String, u64>) -> Json {
    Json::Obj(map.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
}

fn str_map_from_json(json: &Json, name: &str) -> Result<BTreeMap<String, u64>, JsonError> {
    let obj = json
        .get(name)
        .and_then(Json::as_obj)
        .ok_or_else(|| JsonError::new(format!("missing object field `{name}`")))?;
    obj.iter()
        .map(|(k, v)| Ok((k.clone(), u64::from_json(v)?)))
        .collect::<Result<_, JsonError>>()
        .map_err(|e| JsonError::new(format!("field `{name}`: {e}")))
}

impl ToJson for FleetSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("exemplar_cap".into(), self.exemplar_cap.to_json()),
            ("sessions".into(), self.sessions.to_json()),
            ("epochs".into(), self.epochs.to_json()),
            ("faulted".into(), self.faulted.to_json()),
            ("quarantined_sessions".into(), self.quarantined_sessions.to_json()),
            ("nonfinite".into(), self.nonfinite.to_json()),
            ("counters".into(), str_map_to_json(&self.counters)),
            ("span_counts".into(), str_map_to_json(&self.span_counts)),
            ("error_hist".into(), self.error_hist.to_json()),
            (
                "cohorts".into(),
                Json::Obj(self.cohorts.iter().map(|(k, c)| (k.clone(), c.to_json())).collect()),
            ),
            (
                "exemplars".into(),
                Json::Arr(self.exemplars.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for FleetSnapshot {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let cohorts_obj = json
            .get("cohorts")
            .and_then(Json::as_obj)
            .ok_or_else(|| JsonError::new("missing object field `cohorts`"))?;
        let cohorts = cohorts_obj
            .iter()
            .map(|(k, v)| Ok((k.clone(), CohortStats::from_json(v)?)))
            .collect::<Result<_, JsonError>>()
            .map_err(|e| JsonError::new(format!("field `cohorts`: {e}")))?;
        let exemplars: Vec<Json> = field(json, "exemplars")?;
        Ok(FleetSnapshot {
            exemplar_cap: field(json, "exemplar_cap")?,
            sessions: field(json, "sessions")?,
            epochs: field(json, "epochs")?,
            faulted: field(json, "faulted")?,
            quarantined_sessions: field(json, "quarantined_sessions")?,
            nonfinite: field(json, "nonfinite")?,
            counters: str_map_from_json(json, "counters")?,
            span_counts: str_map_from_json(json, "span_counts")?,
            error_hist: field(json, "error_hist")?,
            cohorts,
            exemplars: exemplars
                .iter()
                .map(Exemplar::from_json)
                .collect::<Result<_, _>>()
                .map_err(|e| JsonError::new(format!("field `exemplars`: {e}")))?,
        })
    }
}

/// The sharded fold: sessions route to shard `lane % shards`, and
/// [`FleetAggregator::snapshot`] merges the shards. Because the merge is
/// associative and commutative, the snapshot is invariant in the shard
/// count and in the fold order within a shard's lane set.
#[derive(Debug)]
pub struct FleetAggregator {
    shards: Vec<FleetSnapshot>,
}

impl FleetAggregator {
    /// An aggregator with `shards` shards (`0` picks [`DEFAULT_SHARDS`])
    /// keeping the default [`EXEMPLAR_CAP`] worst exemplars.
    pub fn new(shards: usize) -> FleetAggregator {
        FleetAggregator::with_exemplar_cap(shards, EXEMPLAR_CAP)
    }

    /// [`new`](Self::new) with a configurable worst-K exemplar count
    /// (`0` keeps [`EXEMPLAR_CAP`]) — the CLI's `--top-k`.
    pub fn with_exemplar_cap(shards: usize, cap: usize) -> FleetAggregator {
        let n = if shards == 0 { DEFAULT_SHARDS } else { shards };
        FleetAggregator { shards: vec![FleetSnapshot::with_exemplar_cap(cap); n] }
    }

    /// Folds one retired session into its lane's shard.
    pub fn observe(&mut self, meta: &SessionMeta, capture: &SessionCapture) {
        let shard = (meta.lane % self.shards.len() as u64) as usize;
        self.shards[shard].observe(meta, capture);
    }

    /// Merges every shard into the fleet snapshot. Folds from the first
    /// shard (not an empty default) so a sub-default exemplar cap is not
    /// widened back to [`EXEMPLAR_CAP`] by the merge's max-cap rule.
    pub fn snapshot(&self) -> FleetSnapshot {
        let mut iter = self.shards.iter();
        let first = iter.next().cloned().unwrap_or_default();
        iter.fold(first, |acc, s| acc.merge(s))
    }
}

// ---------------------------------------------------------------------------
// SLO health plane
// ---------------------------------------------------------------------------

/// Declared fleet SLO targets. `min_availability` rows are lower bounds on
/// a scheme's available-epoch fraction; the `max_*` rows are budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTargets {
    /// Scheme → minimum available-epoch fraction.
    pub min_availability: Vec<(String, f64)>,
    /// Maximum fraction of sessions that quarantine any scheme.
    pub max_quarantined_frac: f64,
    /// Maximum calibration drift alarms per 1000 epochs.
    pub max_drift_alarms_per_kepoch: f64,
    /// Maximum fraction of flight postmortems lost to the dump cap
    /// (`flight.dropped / (flight.dumps + flight.dropped)`).
    pub max_flight_drop_frac: f64,
    /// Maximum non-finite fused estimates (the defense stack's contract
    /// is zero).
    pub max_nonfinite: u64,
    /// Maximum steady-state heap allocations per epoch
    /// ([`FleetSnapshot::allocs_per_epoch`]) — the budget the zero-alloc
    /// roadmap work ratchets down.
    pub max_allocs_per_epoch: f64,
}

impl Default for SloTargets {
    fn default() -> Self {
        SloTargets {
            // GPS is legitimately dark indoors; the indoor schemes carry.
            min_availability: vec![
                ("cellular".to_owned(), 0.75),
                ("fusion".to_owned(), 0.75),
                ("gps".to_owned(), 0.05),
                ("motion".to_owned(), 0.85),
                ("wifi".to_owned(), 0.75),
            ],
            max_quarantined_frac: 0.25,
            max_drift_alarms_per_kepoch: 50.0,
            max_flight_drop_frac: 0.5,
            max_nonfinite: 0,
            // The epoch loop is allocation-free once warm (indexed
            // matching + scratch reuse; see core/tests/zero_alloc.rs), so
            // steady state is ~0.07 allocs/epoch — all chaos-driven rare
            // paths. The SLO holds a small ceiling above that (CI pins the
            // tight line via `--alloc-budget 0.5`): one real per-epoch
            // allocation adds >= 1/epoch and trips both.
            max_allocs_per_epoch: 2.0,
        }
    }
}

/// One evaluated SLO row.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRow {
    /// SLO name (`availability.wifi`, `quarantined_sessions`, ...).
    pub name: String,
    /// `"min"` (observed must stay above target) or `"max"` (budget).
    pub kind: String,
    /// Declared target.
    pub target: f64,
    /// Observed value.
    pub observed: f64,
    /// Budget burn: fraction of the error budget consumed (`> 1` means
    /// violated). For `min` rows the budget is `1 - target`.
    pub burn: f64,
    /// Whether the SLO holds.
    pub ok: bool,
}

fn max_row(name: &str, target: f64, observed: f64) -> SloRow {
    let burn = if target > 0.0 { observed / target } else { observed };
    SloRow {
        name: name.to_owned(),
        kind: "max".to_owned(),
        target,
        observed,
        burn,
        ok: observed <= target,
    }
}

/// Evaluates the snapshot against the targets. Every observed value is a
/// ratio of integers from the snapshot, so the rows are deterministic at
/// any worker/shard count.
pub fn evaluate_slos(snap: &FleetSnapshot, targets: &SloTargets) -> Vec<SloRow> {
    let mut rows = Vec::new();
    let avail = snap.availability();
    for (scheme, target) in &targets.min_availability {
        let observed = avail.get(scheme).map_or(0.0, |(_, f)| *f);
        let budget = 1.0 - target;
        let burn = if budget > 0.0 { (1.0 - observed) / budget } else { 1.0 - observed };
        rows.push(SloRow {
            name: format!("availability.{scheme}"),
            kind: "min".to_owned(),
            target: *target,
            observed,
            burn,
            ok: observed >= *target,
        });
    }
    let sessions = snap.sessions.max(1) as f64;
    rows.push(max_row(
        "quarantined_sessions",
        targets.max_quarantined_frac,
        snap.quarantined_sessions as f64 / sessions,
    ));
    let kepochs = snap.epochs.max(1) as f64 / 1000.0;
    rows.push(max_row(
        "drift_alarms_per_kepoch",
        targets.max_drift_alarms_per_kepoch,
        snap.counter("calib.drift_alarms") as f64 / kepochs,
    ));
    let dumps = snap.counter("flight.dumps");
    let dropped = snap.counter("flight.dropped");
    let drop_frac =
        if dumps + dropped > 0 { dropped as f64 / (dumps + dropped) as f64 } else { 0.0 };
    rows.push(max_row("flight_drop_frac", targets.max_flight_drop_frac, drop_frac));
    rows.push(max_row(
        "nonfinite_fused",
        targets.max_nonfinite as f64,
        snap.nonfinite as f64,
    ));
    rows.push(max_row(
        "allocs_per_epoch",
        targets.max_allocs_per_epoch,
        snap.allocs_per_epoch(),
    ));
    rows
}

/// Assembles the canonical `FLEET_HEALTH.json` document: SLO rows,
/// per-scheme availability/quarantine, cohort breakdown, error
/// distribution, exemplars and flight/calibration totals. Deliberately
/// excludes every wall-clock number — byte-identical at any
/// `--jobs`/`--resident`/shard value (wall-clock latency SLOs live in
/// `BENCH_fleet.json`).
pub fn health_report(snap: &FleetSnapshot, targets: &SloTargets) -> Json {
    let slo_rows: Vec<Json> = evaluate_slos(snap, targets)
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("name".into(), Json::Str(r.name.clone())),
                ("kind".into(), Json::Str(r.kind.clone())),
                ("target".into(), Json::Num(r.target)),
                ("observed".into(), Json::Num(r.observed)),
                ("burn".into(), Json::Num(r.burn)),
                ("ok".into(), Json::Bool(r.ok)),
            ])
        })
        .collect();
    let schemes: Vec<(String, Json)> = snap
        .availability()
        .iter()
        .map(|(id, (epochs, frac))| {
            (
                id.clone(),
                Json::Obj(vec![
                    ("available_epochs".into(), epochs.to_json()),
                    ("availability".into(), Json::Num(*frac)),
                    (
                        "quarantine_tripped".into(),
                        snap.counter(&format!("quarantine.tripped.{id}")).to_json(),
                    ),
                    (
                        "quarantine_readmitted".into(),
                        snap.counter(&format!("quarantine.readmitted.{id}")).to_json(),
                    ),
                ]),
            )
        })
        .collect();
    let cohorts: Vec<(String, Json)> = snap
        .cohorts
        .iter()
        .map(|(key, c)| {
            let (counts, mean) = c.error_hist.dense(ERROR_BUCKETS_M);
            (
                key.clone(),
                Json::Obj(vec![
                    ("sessions".into(), c.sessions.to_json()),
                    ("epochs".into(), c.epochs.to_json()),
                    ("faulted".into(), c.faulted.to_json()),
                    ("quarantined".into(), c.quarantined.to_json()),
                    ("drift_alarms".into(), c.drift_alarms.to_json()),
                    ("flight_dumps".into(), c.flight_dumps.to_json()),
                    ("nonfinite".into(), c.nonfinite.to_json()),
                    ("mean_error_m".into(), mean.map_or(Json::Null, Json::Num)),
                    ("error_counts".into(), counts.to_json()),
                ]),
            )
        })
        .collect();
    let exemplars: Vec<Json> = snap
        .exemplars
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("lane".into(), Json::Int(e.lane as i64)),
                ("name".into(), Json::Str(e.name.clone())),
                ("mean_error_m".into(), Json::Num(e.mean_error_micro as f64 / 1e6)),
                ("epochs".into(), e.epochs.to_json()),
                ("flight_postmortems".into(), e.flight_postmortems.to_json()),
                (
                    "quarantined".into(),
                    Json::Arr(e.quarantined.iter().cloned().map(Json::Str).collect()),
                ),
            ])
        })
        .collect();
    let (error_counts, mean_error) = snap.error_hist.dense(ERROR_BUCKETS_M);
    Json::Obj(vec![
        ("health".into(), Json::Str("uniloc-fleet".into())),
        ("sessions".into(), snap.sessions.to_json()),
        ("epochs".into(), snap.epochs.to_json()),
        ("faulted_sessions".into(), snap.faulted.to_json()),
        ("quarantined_sessions".into(), snap.quarantined_sessions.to_json()),
        ("nonfinite_fused".into(), snap.nonfinite.to_json()),
        ("slo".into(), Json::Arr(slo_rows)),
        ("schemes".into(), Json::Obj(schemes)),
        ("cohorts".into(), Json::Obj(cohorts)),
        (
            "error_hist".into(),
            Json::Obj(vec![
                ("bounds_m".into(), ERROR_BUCKETS_M.to_vec().to_json()),
                ("counts".into(), error_counts.to_json()),
                ("mean_error_m".into(), mean_error.map_or(Json::Null, Json::Num)),
                ("dropped".into(), snap.error_hist.dropped.to_json()),
            ]),
        ),
        ("exemplars".into(), Json::Arr(exemplars)),
        (
            "flight".into(),
            Json::Obj(vec![
                ("dumps".into(), snap.counter("flight.dumps").to_json()),
                ("dropped".into(), snap.counter("flight.dropped").to_json()),
                (
                    "suppressed".into(),
                    snap.counter("flight.dumps_suppressed").to_json(),
                ),
            ]),
        ),
        (
            "calib".into(),
            Json::Obj(vec![(
                "drift_alarms".into(),
                snap.counter("calib.drift_alarms").to_json(),
            )]),
        ),
        (
            "alloc".into(),
            Json::Obj(vec![
                ("allocs_per_epoch".into(), Json::Num(snap.allocs_per_epoch())),
                (
                    "steady_allocs".into(),
                    snap.counter("alloc.steady.allocs").to_json(),
                ),
                (
                    "steady_epochs".into(),
                    snap.counter("alloc.steady_epochs").to_json(),
                ),
            ]),
        ),
    ])
    .canonical()
}

// ---------------------------------------------------------------------------
// Deterministic self-profiler
// ---------------------------------------------------------------------------

/// The declared span taxonomy: `(span name, parent span name)`; `""` means
/// a direct child of the root. Spans not named here (and not matching
/// [`span_parent`]'s prefix rules) also hang off the root.
const SPAN_PARENTS: &[(&str, &str)] = &[
    ("engine.confidence", "engine.update"),
    ("engine.fuse", "engine.update"),
    ("engine.predict", "engine.update"),
    ("engine.update", ""),
    ("pipeline.build_context", ""),
    ("pipeline.collect_training", ""),
    ("pipeline.run_walk", ""),
];

/// The parent of `name` in the span taxonomy. Per-scheme estimate spans
/// (`scheme.estimate.<id>`) are opened inside the engine's update scope.
pub fn span_parent(name: &str) -> &'static str {
    if name.starts_with("scheme.estimate.") {
        return "engine.update";
    }
    SPAN_PARENTS
        .iter()
        .find(|(n, _)| *n == name)
        .map_or("", |(_, p)| p)
}

/// One node of the profiler's stage tree. `count` is the span's
/// *invocation count* (see the module docs for why counts, not
/// durations); children are sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfNode {
    /// Span name (the root is named `fleet`).
    pub name: String,
    /// Invocation count (the root carries the fleet's epoch total).
    pub count: u64,
    /// Child stages, sorted by name.
    pub children: Vec<ProfNode>,
}

impl ProfNode {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("count".into(), self.count.to_json()),
            (
                "children".into(),
                Json::Arr(self.children.iter().map(ProfNode::to_json).collect()),
            ),
        ])
    }
}

/// Builds the span-accounting tree from the snapshot's merged
/// `span.*` counts: every recorded span hangs under its declared parent,
/// the root is `fleet` with the epoch total.
pub fn profile_tree(snap: &FleetSnapshot) -> ProfNode {
    fn build(name: &str, count: u64, by_parent: &BTreeMap<&str, Vec<(&str, u64)>>) -> ProfNode {
        let children = by_parent
            .get(name)
            .map(|kids| {
                kids.iter().map(|&(n, c)| build(n, c, by_parent)).collect::<Vec<_>>()
            })
            .unwrap_or_default();
        ProfNode { name: name.to_owned(), count, children }
    }
    // BTreeMap keys keep sibling order sorted by name deterministically.
    let mut by_parent: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
    for (name, &count) in &snap.span_counts {
        by_parent.entry(span_parent(name)).or_default().push((name, count));
    }
    let root = build("", snap.epochs, &by_parent);
    ProfNode { name: "fleet".to_owned(), count: root.count, children: root.children }
}

/// The tree as flamegraph collapsed-stack lines: one
/// `fleet;parent;child COUNT` line per node, depth-first with siblings in
/// name order. Values are invocation counts, not time.
pub fn folded_lines(root: &ProfNode) -> String {
    fn walk(node: &ProfNode, prefix: &str, out: &mut String) {
        let path =
            if prefix.is_empty() { node.name.clone() } else { format!("{prefix};{}", node.name) };
        out.push_str(&format!("{path} {}\n", node.count));
        for child in &node.children {
            walk(child, &path, out);
        }
    }
    let mut out = String::new();
    walk(root, "", &mut out);
    out
}

/// The tree as the canonical `PROF_fleet.json` document.
pub fn profile_report(root: &ProfNode) -> Json {
    Json::Obj(vec![
        ("prof".into(), Json::Str("fleet".into())),
        ("unit".into(), Json::Str("calls".into())),
        ("clock".into(), Json::Str("virtual".into())),
        ("root".into(), root.to_json()),
    ])
    .canonical()
}

// ---------------------------------------------------------------------------
// Allocation observatory tree
// ---------------------------------------------------------------------------

/// One node of the heap-profile stage tree (`PROF_alloc.json`). Counts are
/// *exclusive* (self-only): each span stage flushes only the allocations
/// made while it was the innermost open span (`uniloc_obs::alloc`), so a
/// parent's numbers do not include its children's. All four figures are
/// exact merged integers — byte-identical at any `--jobs`/`--shards`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AllocNode {
    /// Stage (span) name; the root is named `fleet` and carries the
    /// fleet-wide totals.
    pub name: String,
    /// Heap allocations attributed to this stage.
    pub allocs: u64,
    /// Bytes requested by those allocations (including realloc growth).
    pub bytes: u64,
    /// Deallocations attributed to this stage.
    pub deallocs: u64,
    /// Reallocations attributed to this stage.
    pub reallocs: u64,
    /// Child stages, sorted by name.
    pub children: Vec<AllocNode>,
}

impl AllocNode {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("allocs".into(), self.allocs.to_json()),
            ("bytes".into(), self.bytes.to_json()),
            ("deallocs".into(), self.deallocs.to_json()),
            ("reallocs".into(), self.reallocs.to_json()),
            (
                "children".into(),
                Json::Arr(self.children.iter().map(AllocNode::to_json).collect()),
            ),
        ])
    }
}

/// Builds the heap-profile tree from the snapshot's merged
/// `alloc.{allocs,bytes,deallocs,reallocs}.<stage>` counters, hung under
/// the same [`span_parent`] taxonomy as the call-count profiler; the root
/// is `fleet` carrying the sums over every stage. Meter counters
/// (`alloc.steady.*`, `alloc.steady_epochs`) are not stages and never
/// appear in the tree.
pub fn alloc_tree(snap: &FleetSnapshot) -> AllocNode {
    #[derive(Default, Clone)]
    struct Slots {
        allocs: u64,
        bytes: u64,
        deallocs: u64,
        reallocs: u64,
    }
    // BTreeMap keys keep sibling order sorted by name deterministically.
    let mut stages: BTreeMap<&str, Slots> = BTreeMap::new();
    for (name, &v) in &snap.counters {
        let Some(rest) = name.strip_prefix("alloc.") else { continue };
        let (field, stage) = if let Some(s) = rest.strip_prefix("allocs.") {
            (0, s)
        } else if let Some(s) = rest.strip_prefix("bytes.") {
            (1, s)
        } else if let Some(s) = rest.strip_prefix("deallocs.") {
            (2, s)
        } else if let Some(s) = rest.strip_prefix("reallocs.") {
            (3, s)
        } else {
            // Meter counters (`alloc.steady.allocs`, `alloc.steady_epochs`)
            // are not per-stage slots.
            continue;
        };
        let slot = stages.entry(stage).or_default();
        match field {
            0 => slot.allocs += v,
            1 => slot.bytes += v,
            2 => slot.deallocs += v,
            _ => slot.reallocs += v,
        }
    }
    fn build(name: &str, slots: &Slots, by_parent: &BTreeMap<&str, Vec<(&str, Slots)>>) -> AllocNode {
        let children = by_parent
            .get(name)
            .map(|kids| kids.iter().map(|(n, s)| build(n, s, by_parent)).collect::<Vec<_>>())
            .unwrap_or_default();
        AllocNode {
            name: name.to_owned(),
            allocs: slots.allocs,
            bytes: slots.bytes,
            deallocs: slots.deallocs,
            reallocs: slots.reallocs,
            children,
        }
    }
    let mut by_parent: BTreeMap<&str, Vec<(&str, Slots)>> = BTreeMap::new();
    let mut total = Slots::default();
    for (stage, slots) in &stages {
        total.allocs += slots.allocs;
        total.bytes += slots.bytes;
        total.deallocs += slots.deallocs;
        total.reallocs += slots.reallocs;
        by_parent.entry(span_parent(stage)).or_default().push((stage, slots.clone()));
    }
    let mut root = build("", &total, &by_parent);
    root.name = "fleet".to_owned();
    root
}

/// The heap-profile tree as flamegraph collapsed-stack lines: one
/// `fleet;parent;child ALLOCS` line per node, depth-first with siblings in
/// name order. Values are exclusive allocation counts, not time.
pub fn alloc_folded_lines(root: &AllocNode) -> String {
    fn walk(node: &AllocNode, prefix: &str, out: &mut String) {
        let path =
            if prefix.is_empty() { node.name.clone() } else { format!("{prefix};{}", node.name) };
        out.push_str(&format!("{path} {}\n", node.allocs));
        for child in &node.children {
            walk(child, &path, out);
        }
    }
    let mut out = String::new();
    walk(root, "", &mut out);
    out
}

/// The heap profile as the canonical `PROF_alloc.json` document:
/// the stage tree plus the steady-state meter, all exact integers (the
/// per-epoch ratio is the one derived float, computed from them).
pub fn alloc_report(snap: &FleetSnapshot, root: &AllocNode) -> Json {
    Json::Obj(vec![
        ("prof".into(), Json::Str("alloc".into())),
        ("unit".into(), Json::Str("allocs".into())),
        ("allocs_per_epoch".into(), Json::Num(snap.allocs_per_epoch())),
        (
            "steady".into(),
            Json::Obj(vec![
                ("allocs".into(), snap.counter("alloc.steady.allocs").to_json()),
                ("epochs".into(), snap.counter("alloc.steady_epochs").to_json()),
            ]),
        ),
        ("root".into(), root.to_json()),
    ])
    .canonical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;

    #[allow(clippy::field_reassign_with_default)] // clearer built field by field
    fn capture(counters: &[(&str, u64)], spans: &[(&str, u64)]) -> SessionCapture {
        let mut ms = MetricsSnapshot::default();
        ms.counters = counters.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        ms.histograms = spans
            .iter()
            .map(|(n, c)| {
                let mut h = crate::metrics::HistogramSnapshot {
                    bounds: vec![1.0],
                    counts: vec![0, 0],
                    sum: 0.0,
                    dropped: 0,
                };
                h.counts[0] = *c;
                (format!("span.{n}"), h)
            })
            .collect();
        SessionCapture { metrics: ms, ..SessionCapture::default() }
    }

    fn meta(lane: u64, err: f64) -> SessionMeta {
        SessionMeta {
            lane,
            name: format!("s{lane:05}"),
            persona: "m-30s".to_owned(),
            device: "nexus5x".to_owned(),
            venue: "office".to_owned(),
            faulted: lane.is_multiple_of(3),
            epochs: 10,
            mean_error_m: Some(err),
            nonfinite: 0,
            quarantined: if lane.is_multiple_of(4) { vec!["gps".to_owned()] } else { vec![] },
        }
    }

    #[test]
    fn sparse_hist_records_and_merges_exactly() {
        let bounds = [1.0, 2.0, 4.0];
        let mut a = SparseHist::default();
        a.record(&bounds, 0.5);
        a.record(&bounds, 3.0);
        a.record(&bounds, f64::NAN);
        let mut b = SparseHist::default();
        b.record(&bounds, 100.0);
        let m = a.merge(&b);
        assert_eq!(m.count(), 3);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.sum_micro, micro(0.5) as i128 + micro(3.0) as i128 + micro(100.0) as i128);
        let (dense, mean) = m.dense(&bounds);
        assert_eq!(dense, vec![1, 0, 1, 1]);
        assert!((mean.unwrap() - (103.5 / 3.0)).abs() < 1e-9);
        assert_eq!(a.merge(&b), b.merge(&a), "merge commutes");
    }

    #[test]
    fn snapshot_round_trips_through_json_exactly() {
        let mut snap = FleetSnapshot::with_exemplar_cap(3);
        for lane in 0..6u64 {
            snap.observe(
                &meta(lane, 0.4 + lane as f64),
                &capture(
                    &[("pipeline.epochs", 10), ("alloc.steady.allocs", 123)],
                    &[("engine.update", 10), ("engine.fuse", 10)],
                ),
            );
        }
        // Push sum_micro past i64 to prove the decimal-string path.
        snap.error_hist.sum_micro += i64::MAX as i128 * 3;
        let text = snap.to_json().canonical().to_string();
        let back: FleetSnapshot = uniloc_stats::json::from_str(&text).expect("parse snapshot");
        assert_eq!(back, snap, "snapshot JSON round-trip must be exact");
        assert_eq!(back.to_json().canonical().to_string(), text, "canonical stability");
        // The restored snapshot must keep merging exactly: fold-then-split
        // equals split-then-fold.
        let mut more = FleetSnapshot::with_exemplar_cap(3);
        more.observe(&meta(7, 9.5), &capture(&[("pipeline.epochs", 10)], &[]));
        assert_eq!(back.merge(&more), snap.merge(&more));
    }

    #[test]
    fn aggregator_is_shard_count_invariant() {
        let sessions: Vec<(SessionMeta, SessionCapture)> = (0..17)
            .map(|lane| {
                (
                    meta(lane, 1.0 + lane as f64 * 0.37),
                    capture(
                        &[("pipeline.epochs", 10), ("engine.scheme.available.wifi", 8)],
                        &[("engine.update", 10)],
                    ),
                )
            })
            .collect();
        let mut snaps = Vec::new();
        for shards in [1usize, 2, 5, 8] {
            let mut agg = FleetAggregator::new(shards);
            for (m, c) in &sessions {
                agg.observe(m, c);
            }
            snaps.push(agg.snapshot());
        }
        for s in &snaps[1..] {
            assert_eq!(s, &snaps[0]);
        }
        assert_eq!(snaps[0].sessions, 17);
        assert_eq!(snaps[0].counter("pipeline.epochs"), 170);
        assert_eq!(snaps[0].span_counts.get("engine.update"), Some(&170));
    }

    #[test]
    fn exemplars_are_worst_first_and_capped() {
        let mut snap = FleetSnapshot::default();
        for lane in 0..20 {
            snap.observe(&meta(lane, lane as f64), &capture(&[], &[]));
        }
        assert_eq!(snap.exemplars.len(), EXEMPLAR_CAP);
        assert_eq!(snap.exemplars[0].lane, 19, "worst error first");
        assert!(snap
            .exemplars
            .windows(2)
            .all(|w| w[0].mean_error_micro >= w[1].mean_error_micro));
    }

    #[test]
    fn availability_and_slos_read_counters() {
        let mut snap = FleetSnapshot::default();
        for lane in 0..4 {
            snap.observe(
                &meta(lane, 2.0),
                &capture(
                    &[
                        ("pipeline.epochs", 10),
                        ("engine.scheme.available.wifi", 9),
                        ("engine.scheme.available.gps", 1),
                    ],
                    &[],
                ),
            );
        }
        let avail = snap.availability();
        assert_eq!(avail["wifi"].0, 36);
        assert!((avail["wifi"].1 - 0.9).abs() < 1e-12);
        let rows = evaluate_slos(&snap, &SloTargets::default());
        let wifi = rows.iter().find(|r| r.name == "availability.wifi").unwrap();
        assert!(wifi.ok && wifi.kind == "min");
        let nf = rows.iter().find(|r| r.name == "nonfinite_fused").unwrap();
        assert!(nf.ok && nf.observed == 0.0);
    }

    #[test]
    fn profile_tree_nests_spans_under_declared_parents() {
        let snap = FleetSnapshot {
            epochs: 10,
            span_counts: [
                ("engine.update", 10u64),
                ("engine.predict", 10),
                ("engine.fuse", 10),
                ("scheme.estimate.wifi", 9),
                ("pipeline.build_context", 1),
            ]
            .iter()
            .map(|(n, c)| (n.to_string(), *c))
            .collect(),
            ..FleetSnapshot::default()
        };
        let root = profile_tree(&snap);
        assert_eq!(root.name, "fleet");
        assert_eq!(root.count, 10);
        let update = root.children.iter().find(|c| c.name == "engine.update").unwrap();
        let kids: Vec<&str> = update.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, ["engine.fuse", "engine.predict", "scheme.estimate.wifi"]);
        let folded = folded_lines(&root);
        assert!(folded.contains("fleet;engine.update;engine.predict 10\n"));
        assert!(folded.contains("fleet;pipeline.build_context 1\n"));
        let doc = profile_report(&root);
        assert_eq!(doc.get("unit").unwrap().as_str().unwrap(), "calls");
    }

    #[test]
    fn exemplar_cap_is_configurable_and_survives_merge() {
        let mut a = FleetSnapshot::with_exemplar_cap(3);
        let mut b = FleetSnapshot::with_exemplar_cap(3);
        for lane in 0..10 {
            a.observe(&meta(lane, lane as f64), &capture(&[], &[]));
            b.observe(&meta(lane + 10, (lane + 10) as f64), &capture(&[], &[]));
        }
        assert_eq!(a.exemplars.len(), 3);
        let merged = a.merge(&b);
        assert_eq!(merged.exemplar_cap, 3);
        assert_eq!(merged.exemplars.len(), 3);
        assert_eq!(merged.exemplars[0].lane, 19, "worst across both inputs");
        // Merging with a wider-capped snapshot takes the max cap.
        let wide = FleetSnapshot::default();
        assert_eq!(a.merge(&wide).exemplar_cap, EXEMPLAR_CAP);
        // Zero falls back to the default.
        assert_eq!(FleetSnapshot::with_exemplar_cap(0).exemplar_cap, EXEMPLAR_CAP);
    }

    #[test]
    fn aggregator_honors_sub_default_cap_across_shards() {
        let mut agg = FleetAggregator::with_exemplar_cap(4, 2);
        for lane in 0..12 {
            agg.observe(&meta(lane, lane as f64), &capture(&[], &[]));
        }
        let snap = agg.snapshot();
        assert_eq!(snap.exemplar_cap, 2);
        assert_eq!(snap.exemplars.len(), 2, "fold must not widen a sub-default cap");
        assert_eq!(snap.exemplars[0].lane, 11);
    }

    #[test]
    fn alloc_tree_nests_stages_and_reports_meter() {
        let mut snap = FleetSnapshot::default();
        snap.observe(
            &meta(0, 2.0),
            &capture(
                &[
                    ("alloc.allocs.engine.update", 40),
                    ("alloc.bytes.engine.update", 4096),
                    ("alloc.deallocs.engine.update", 38),
                    ("alloc.reallocs.engine.update", 2),
                    ("alloc.allocs.scheme.estimate.wifi", 9),
                    ("alloc.bytes.scheme.estimate.wifi", 512),
                    ("alloc.allocs.pipeline.build_context", 100),
                    ("alloc.bytes.pipeline.build_context", 65536),
                    ("alloc.steady.allocs", 30),
                    ("alloc.steady_epochs", 6),
                ],
                &[],
            ),
        );
        let root = alloc_tree(&snap);
        assert_eq!(root.name, "fleet");
        assert_eq!(root.allocs, 149, "root carries the stage totals");
        assert_eq!(root.bytes, 4096 + 512 + 65536);
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            ["engine.update", "pipeline.build_context"],
            "meter counters must not become stages"
        );
        let update = &root.children[0];
        assert_eq!(update.allocs, 40, "counts are exclusive, not rolled up");
        assert_eq!(update.reallocs, 2);
        let wifi = update.children.iter().find(|c| c.name == "scheme.estimate.wifi").unwrap();
        assert_eq!((wifi.allocs, wifi.bytes, wifi.deallocs), (9, 512, 0));

        let folded = alloc_folded_lines(&root);
        assert!(folded.starts_with("fleet 149\n"));
        assert!(folded.contains("fleet;engine.update;scheme.estimate.wifi 9\n"));
        assert!(folded.contains("fleet;pipeline.build_context 100\n"));

        let doc = alloc_report(&snap, &root);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap().canonical().to_string(), text);
        assert_eq!(doc.get("prof").unwrap().as_str().unwrap(), "alloc");
        assert_eq!(doc.get("unit").unwrap().as_str().unwrap(), "allocs");
        assert_eq!(
            doc.get("steady").unwrap().get("allocs").unwrap().as_i64().unwrap(),
            30
        );
        assert!((snap.allocs_per_epoch() - 5.0).abs() < 1e-12);
        assert!(
            (doc.get("allocs_per_epoch").unwrap().as_f64().unwrap() - 5.0).abs() < 1e-12
        );
        // The SLO plane sees the meter too — and 5 allocs/epoch breaches
        // the zero-alloc era's 2.0 ceiling.
        let rows = evaluate_slos(&snap, &SloTargets::default());
        let row = rows.iter().find(|r| r.name == "allocs_per_epoch").unwrap();
        assert!(!row.ok && row.kind == "max" && (row.observed - 5.0).abs() < 1e-12);
    }

    #[test]
    fn health_report_is_canonical_and_complete() {
        let mut snap = FleetSnapshot::default();
        for lane in 0..6 {
            snap.observe(
                &meta(lane, 1.5 + lane as f64),
                &capture(
                    &[
                        ("pipeline.epochs", 10),
                        ("engine.scheme.available.wifi", 8),
                        ("calib.drift_alarms", 1),
                        ("flight.dumps", 2),
                    ],
                    &[("engine.update", 10)],
                ),
            );
        }
        let doc = health_report(&snap, &SloTargets::default());
        let text = doc.to_string();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed.canonical().to_string(), text, "already canonical");
        assert_eq!(doc.get("sessions").unwrap().as_i64().unwrap(), 6);
        assert!(doc.get("slo").unwrap().as_arr().unwrap().len() >= 9);
        assert!(doc.get("cohorts").unwrap().get("m-30s/nexus5x/office").is_some());
        assert_eq!(
            doc.get("flight").unwrap().get("dumps").unwrap().as_i64().unwrap(),
            12
        );
    }
}
