//! Property-based tests for the fleet observatory's merge algebra
//! (`DESIGN.md` §10), on the in-repo [`uniloc_rng::check`] harness. The
//! sharded aggregation is only deterministic because the snapshot merge is
//! an exact, associative, commutative fold — these tests pin that algebra
//! directly, over randomized session populations, so the `--jobs`/`--shards`
//! byte-identity gates in `tests/fleet_differential.rs` rest on a proven
//! primitive rather than a sampled one.

use uniloc_obs::fleet::{FleetAggregator, FleetSnapshot, SessionMeta, SparseHist, EXEMPLAR_CAP};
use uniloc_obs::{HistogramSnapshot, MetricsSnapshot, SessionCapture};
use uniloc_rng::check::Checker;
use uniloc_rng::require;

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fleet_proptests.regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(96).regressions(REGRESSIONS)
}

const BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0];

/// A value stream mixing in-range, overflow and non-finite samples.
fn gen_values(rng: &mut uniloc_rng::Rng, scale: f64) -> Vec<f64> {
    let n = rng.gen_range(0..60usize);
    (0..n)
        .map(|_| match rng.gen_range(0..8u32) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => rng.gen_range(-2.0..30.0 * scale.max(0.05)),
        })
        .collect()
}

fn hist_of(values: &[f64]) -> SparseHist {
    let mut h = SparseHist::default();
    for &v in values {
        h.record(BOUNDS, v);
    }
    h
}

/// One randomized retired session: identity axes drawn from small pools
/// (so cohorts collide across sessions, exercising the cohort merge) plus
/// a synthetic capture carrying counters and one span histogram.
fn gen_session(rng: &mut uniloc_rng::Rng, lane: u64, scale: f64) -> (SessionMeta, SessionCapture) {
    const PERSONAS: [&str; 3] = ["m-30s", "f-20s", "m-60s"];
    const DEVICES: [&str; 2] = ["nexus5x", "s7"];
    const VENUES: [&str; 2] = ["office", "open-space"];
    let epochs = rng.gen_range(1..40u64);
    let quarantined = if rng.gen_range(0..4u32) == 0 { vec!["wifi".to_owned()] } else { vec![] };
    let mean_error_m = match rng.gen_range(0..6u32) {
        0 => None,
        1 => Some(f64::NAN), // must be dropped, never panicked on
        _ => Some(rng.gen_range(0.0..40.0 * scale.max(0.05))),
    };
    let meta = SessionMeta {
        lane,
        name: format!("s{lane:05}"),
        persona: PERSONAS[rng.gen_range(0..PERSONAS.len())].to_owned(),
        device: DEVICES[rng.gen_range(0..DEVICES.len())].to_owned(),
        venue: VENUES[rng.gen_range(0..VENUES.len())].to_owned(),
        faulted: rng.gen_range(0..3u32) == 0,
        epochs,
        mean_error_m,
        nonfinite: rng.gen_range(0..2u64),
        quarantined,
    };
    let counters = vec![
        ("calib.drift_alarms".to_owned(), rng.gen_range(0..3u64)),
        ("engine.scheme.available.wifi".to_owned(), rng.gen_range(0..epochs + 1)),
        ("flight.dumps".to_owned(), rng.gen_range(0..2u64)),
        ("pipeline.epochs".to_owned(), epochs),
    ];
    let span = HistogramSnapshot {
        bounds: vec![1.0],
        counts: vec![epochs, 0],
        sum: 0.0,
        dropped: 0,
    };
    let capture = SessionCapture {
        metrics: MetricsSnapshot {
            counters,
            gauges: vec![],
            histograms: vec![("span.engine.update".to_owned(), span)],
        },
        ..SessionCapture::default()
    };
    (meta, capture)
}

fn gen_fleet(
    rng: &mut uniloc_rng::Rng,
    scale: f64,
) -> Vec<(SessionMeta, SessionCapture)> {
    let n = rng.gen_range(0..(40.0 * scale.max(0.1)) as u64 + 3);
    (0..n).map(|lane| gen_session(rng, lane, scale)).collect()
}

fn fold(sessions: &[(SessionMeta, SessionCapture)]) -> FleetSnapshot {
    let mut snap = FleetSnapshot::default();
    for (meta, capture) in sessions {
        snap.observe(meta, capture);
    }
    snap
}

/// `SparseHist` merge is associative, commutative and lossless — exact
/// equality, not tolerance: the sums are integer micro-units.
#[test]
fn sparse_hist_merge_is_exact_assoc_comm() {
    checker("sparse_hist_merge_is_exact_assoc_comm").run(
        |rng, scale| {
            (gen_values(rng, scale), gen_values(rng, scale), gen_values(rng, scale))
        },
        |(a, b, c)| {
            let (ha, hb, hc) = (hist_of(a), hist_of(b), hist_of(c));
            require!(ha.merge(&hb) == hb.merge(&ha));
            require!(ha.merge(&hb).merge(&hc) == ha.merge(&hb.merge(&hc)));
            let all: Vec<f64> =
                a.iter().chain(b).chain(c).copied().collect();
            require!(ha.merge(&hb).merge(&hc) == hist_of(&all));
            Ok(())
        },
    );
}

/// `FleetSnapshot` merge is associative and commutative over randomized
/// session populations — counters, cohorts, error histograms and the
/// exemplar top-K all included (exact equality via `PartialEq`).
#[test]
fn fleet_snapshot_merge_is_assoc_comm() {
    checker("fleet_snapshot_merge_is_assoc_comm").run(
        |rng, scale| {
            (gen_fleet(rng, scale), gen_fleet(rng, scale), gen_fleet(rng, scale))
        },
        |(a, b, c)| {
            // Disjoint lanes per population, as in a real fleet.
            let relane = |s: &[(SessionMeta, SessionCapture)], base: u64| {
                s.iter()
                    .cloned()
                    .map(|(mut m, cap)| {
                        m.lane += base;
                        (m, cap)
                    })
                    .collect::<Vec<_>>()
            };
            let (sa, sb, sc) =
                (fold(a), fold(&relane(b, 10_000)), fold(&relane(c, 20_000)));
            require!(sa.merge(&sb) == sb.merge(&sa));
            require!(sa.merge(&sb).merge(&sc) == sa.merge(&sb.merge(&sc)));
            require!(sa.merge(&FleetSnapshot::default()) == sa);
            Ok(())
        },
    );
}

/// The aggregator's snapshot is invariant in the shard count and in the
/// order sessions are folded — the exact property the `--jobs 1/2/4/8`
/// byte-identity gate depends on.
#[test]
fn aggregator_is_shard_count_and_order_invariant() {
    checker("aggregator_is_shard_count_and_order_invariant").run(
        |rng, scale| {
            let sessions = gen_fleet(rng, scale);
            let mut order: Vec<usize> = (0..sessions.len()).collect();
            // Deterministic shuffle from the case's rng.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..i + 1));
            }
            (sessions, order)
        },
        |(sessions, order)| {
            let snap_with = |shards: usize, idx: &[usize]| {
                let mut agg = FleetAggregator::new(shards);
                for &i in idx {
                    let (meta, capture) = &sessions[i];
                    agg.observe(meta, capture);
                }
                agg.snapshot()
            };
            let in_order: Vec<usize> = (0..sessions.len()).collect();
            let baseline = snap_with(1, &in_order);
            for shards in [2, 3, 5, 8, 16] {
                require!(snap_with(shards, &in_order) == baseline);
            }
            require!(snap_with(4, order) == baseline);
            require!(baseline == fold(sessions));
            Ok(())
        },
    );
}

/// The exemplar list is the true top-K: the K worst finite mean errors
/// across the whole population, worst first, regardless of sharding.
#[test]
fn exemplars_are_the_global_worst_k() {
    checker("exemplars_are_the_global_worst_k").run(
        gen_fleet,
        |sessions| {
            let snap = fold(sessions);
            let mut expected: Vec<(i64, u64)> = sessions
                .iter()
                .filter_map(|(m, _)| {
                    m.mean_error_m
                        .filter(|e| e.is_finite())
                        .map(|e| (uniloc_obs::fleet::micro(e), m.lane))
                })
                .collect();
            expected.sort_by_key(|&(err, lane)| (-err, lane));
            expected.truncate(EXEMPLAR_CAP);
            let got: Vec<(i64, u64)> =
                snap.exemplars.iter().map(|e| (e.mean_error_micro, e.lane)).collect();
            require!(got == expected);
            Ok(())
        },
    );
}
