//! Property-based tests for the observability layer, on the in-repo
//! [`uniloc_rng::check`] harness: histogram bucket invariants and virtual
//! clock monotonicity.

use uniloc_obs::{Clock, Histogram, RingCollector, Subscriber, TraceEvent, TraceLevel, VirtualClock};
use uniloc_rng::check::Checker;
use uniloc_rng::require;

const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/proptests.regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(128).regressions(REGRESSIONS)
}

/// Strictly ascending finite bucket bounds.
fn gen_bounds(rng: &mut uniloc_rng::Rng, scale: f64) -> Vec<f64> {
    let n = rng.gen_range(1..12usize);
    let mut b = Vec::with_capacity(n);
    let mut x = rng.gen_range(-50.0 * scale..50.0 * scale.max(0.01));
    for _ in 0..n {
        b.push(x);
        x += rng.gen_range(0.1..10.0 * scale.max(0.02));
    }
    b
}

/// A value stream mixing in-range, overflow and non-finite samples.
fn gen_values(rng: &mut uniloc_rng::Rng, scale: f64) -> Vec<f64> {
    let n = rng.gen_range(0..200usize);
    (0..n)
        .map(|_| match rng.gen_range(0..10u32) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => rng.gen_range(-120.0 * scale..120.0 * scale.max(0.01)),
        })
        .collect()
}

/// Every finite sample lands in exactly one bucket: the counts sum to the
/// finite-sample count and `dropped` to the non-finite count.
#[test]
fn histogram_counts_sum_to_recorded() {
    checker("histogram_counts_sum_to_recorded").run(
        |rng, scale| (gen_bounds(rng, scale), gen_values(rng, scale)),
        |(bounds, values)| {
            let h = Histogram::new(bounds);
            for &v in values {
                h.record(v);
            }
            let snap = h.snapshot();
            let finite = values.iter().filter(|v| v.is_finite()).count() as u64;
            let non_finite = values.len() as u64 - finite;
            require!(snap.counts.len() == bounds.len() + 1);
            require!(snap.count() == finite);
            require!(snap.dropped == non_finite);
            Ok(())
        },
    );
}

/// The CDF implied by the buckets is monotone: cumulative counts never
/// decrease and percentile estimates never decrease in `p`.
#[test]
fn histogram_cdf_is_monotone() {
    checker("histogram_cdf_is_monotone").run(
        |rng, scale| (gen_bounds(rng, scale), gen_values(rng, scale)),
        |(bounds, values)| {
            let h = Histogram::new(bounds);
            for &v in values {
                h.record(v);
            }
            let snap = h.snapshot();
            let mut cum = 0u64;
            for &c in &snap.counts {
                let next = cum.checked_add(c).expect("no overflow");
                require!(next >= cum);
                cum = next;
            }
            if snap.count() > 0 {
                let mut prev = f64::NEG_INFINITY;
                for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                    let q = snap.percentile(p).expect("non-empty histogram");
                    require!(q >= prev);
                    prev = q;
                }
            } else {
                require!(snap.percentile(50.0).is_none());
            }
            Ok(())
        },
    );
}

/// Merging snapshots is associative (and losslessly additive in counts).
#[test]
fn histogram_merge_is_associative() {
    checker("histogram_merge_is_associative").run(
        |rng, scale| {
            let bounds = gen_bounds(rng, scale);
            let a = gen_values(rng, scale);
            let b = gen_values(rng, scale);
            let c = gen_values(rng, scale);
            (bounds, a, b, c)
        },
        |(bounds, a, b, c)| {
            let snap = |values: &[f64]| {
                let h = Histogram::new(bounds);
                for &v in values {
                    h.record(v);
                }
                h.snapshot()
            };
            let (sa, sb, sc) = (snap(a), snap(b), snap(c));
            let left = sa.merge(&sb).expect("same bounds").merge(&sc).expect("same bounds");
            let right = sa.merge(&sb.merge(&sc).expect("same bounds")).expect("same bounds");
            require!(left.counts == right.counts);
            require!(left.dropped == right.dropped);
            require!((left.sum - right.sum).abs() <= 1e-9 * (1.0 + left.sum.abs()));
            require!(left.count() == sa.count() + sb.count() + sc.count());
            Ok(())
        },
    );
}

/// Merging snapshots is commutative: `a.merge(b)` and `b.merge(a)` agree
/// bucket-for-bucket.
#[test]
fn histogram_merge_is_commutative() {
    checker("histogram_merge_is_commutative").run(
        |rng, scale| {
            let bounds = gen_bounds(rng, scale);
            let a = gen_values(rng, scale);
            let b = gen_values(rng, scale);
            (bounds, a, b)
        },
        |(bounds, a, b)| {
            let snap = |values: &[f64]| {
                let h = Histogram::new(bounds);
                for &v in values {
                    h.record(v);
                }
                h.snapshot()
            };
            let (sa, sb) = (snap(a), snap(b));
            let ab = sa.merge(&sb).expect("same bounds");
            let ba = sb.merge(&sa).expect("same bounds");
            require!(ab.counts == ba.counts);
            require!(ab.dropped == ba.dropped);
            require!((ab.sum - ba.sum).abs() <= 1e-9 * (1.0 + ab.sum.abs()));
            Ok(())
        },
    );
}

/// Merging snapshots with different bucket layouts returns an error — it
/// never panics and never silently mixes incompatible buckets.
#[test]
fn histogram_merge_bucket_mismatch_errors() {
    checker("histogram_merge_bucket_mismatch_errors").run(
        |rng, scale| {
            let a = gen_bounds(rng, scale);
            let mut b = gen_bounds(rng, scale * 1.7 + 0.3);
            if b == a {
                // Force a layout difference when the generators collide.
                let last = *b.last().expect("non-empty bounds");
                b.push(last + 1.0);
            }
            (a, b, gen_values(rng, scale), gen_values(rng, scale))
        },
        |(bounds_a, bounds_b, va, vb)| {
            let snap = |bounds: &[f64], values: &[f64]| {
                let h = Histogram::new(bounds);
                for &v in values {
                    h.record(v);
                }
                h.snapshot()
            };
            let sa = snap(bounds_a, va);
            let sb = snap(bounds_b, vb);
            require!(sa.merge(&sb).is_err());
            require!(sb.merge(&sa).is_err());
            // Mismatch must not corrupt either side: self-merge still works.
            require!(sa.merge(&sa).is_ok());
            require!(sb.merge(&sb).is_ok());
            Ok(())
        },
    );
}

/// The ring keeps exactly the last `capacity` events in arrival order and
/// accounts for every eviction: for `n` pushes into a ring of capacity `c`
/// the buffer holds events `max(0, n-c)..n` oldest-first and reports
/// `max(0, n-c)` dropped.
#[test]
fn ring_collector_evicts_oldest_in_order() {
    checker("ring_collector_evicts_oldest_in_order").run(
        |rng, scale| {
            let capacity = rng.gen_range(1..32usize);
            let pushes = rng.gen_range(0..(96.0 * scale.max(0.05)) as usize + 2);
            (capacity, pushes)
        },
        |&(capacity, pushes)| {
            let ring = RingCollector::new(capacity);
            for i in 0..pushes {
                ring.event(&TraceEvent {
                    level: TraceLevel::Info,
                    name: format!("e{i}"),
                    t_ns: i as u64,
                    duration_ns: None,
                    fields: Vec::new(),
                });
            }
            let events = ring.events();
            let expect_dropped = pushes.saturating_sub(capacity);
            require!(events.len() == pushes.min(capacity));
            require!(ring.dropped() == expect_dropped as u64);
            for (offset, e) in events.iter().enumerate() {
                let i = expect_dropped + offset;
                require!(e.name == format!("e{i}"));
                require!(e.t_ns == i as u64);
            }
            Ok(())
        },
    );
}

/// The virtual clock never runs backwards under any interleaving of
/// `advance_ns` / `set_ns` / `set_seconds` (including stale and bogus
/// inputs, which it must ignore rather than rewind on).
#[test]
fn virtual_clock_is_monotone() {
    #[derive(Debug)]
    enum Op {
        Advance(u64),
        Set(u64),
        Seconds(f64),
    }
    checker("virtual_clock_is_monotone").run(
        |rng, scale| {
            let n = rng.gen_range(1..100usize);
            (0..n)
                .map(|_| match rng.gen_range(0..4u32) {
                    0 => Op::Advance(rng.gen_range(0..(1e9 * scale.max(0.01)) as u64 + 1)),
                    1 => Op::Set(rng.gen_range(0..(2e9 * scale.max(0.01)) as u64 + 1)),
                    2 => Op::Seconds(rng.gen_range(-1.0..2.0 * scale.max(0.01))),
                    _ => Op::Seconds(f64::NAN),
                })
                .collect::<Vec<Op>>()
        },
        |ops| {
            let clock = VirtualClock::new();
            let mut prev = 0u64;
            for op in ops {
                match *op {
                    Op::Advance(d) => clock.advance_ns(d),
                    Op::Set(t) => clock.set_ns(t),
                    Op::Seconds(t) => clock.set_seconds(t),
                }
                let now = clock.now_ns();
                require!(now >= prev);
                prev = now;
            }
            Ok(())
        },
    );
}
