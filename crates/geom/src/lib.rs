//! Planar geometry substrate for the UniLoc reproduction.
//!
//! Everything in UniLoc happens on a 2-D local map: walkers follow paths,
//! fingerprints sit on grids, particle filters bounce off walls, and GPS
//! fixes arrive in a geographic frame that must be converted "to the map
//! coordinate by the public digital map information" (Section IV-B of the
//! paper). This crate provides:
//!
//! * [`Point`] / [`Vector2`] — positions and displacements in meters.
//! * [`Segment`], [`Rect`], [`Polygon`] — wall and zone geometry with
//!   point-in-polygon and distance queries.
//! * [`Polyline`] — arc-length parameterised paths: the eight daily campus
//!   paths of Fig. 4 are polylines, and walkers advance along them by
//!   distance-from-start ("station").
//! * [`FloorPlan`] — walls, corridors with widths, and landmarks (turns,
//!   doors, WiFi signatures) used by the PDR scheme's map constraints.
//! * [`GeoFrame`] — local-tangent-plane conversion between (latitude,
//!   longitude) and map meters, used by the GPS scheme.
//!
//! # Examples
//!
//! ```
//! use uniloc_geom::{Point, Polyline};
//!
//! let path = Polyline::new(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 0.0),
//!     Point::new(10.0, 5.0),
//! ])?;
//! assert_eq!(path.length(), 15.0);
//! assert_eq!(path.point_at(12.0), Point::new(10.0, 2.0));
//! # Ok::<(), uniloc_geom::GeomError>(())
//! ```

pub mod floorplan;
pub mod frame;
pub mod point;
pub mod polyline;
pub mod shapes;

use std::error::Error;
use std::fmt;

/// Errors produced by geometric constructors and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// A polyline needs at least two distinct vertices.
    DegeneratePolyline,
    /// A polygon needs at least three vertices.
    DegeneratePolygon,
    /// An input coordinate was NaN or infinite.
    NonFinite,
    /// A width/radius parameter must be positive.
    NonPositive(&'static str),
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::DegeneratePolyline => {
                write!(f, "polyline requires at least two distinct vertices")
            }
            GeomError::DegeneratePolygon => write!(f, "polygon requires at least three vertices"),
            GeomError::NonFinite => write!(f, "coordinates must be finite"),
            GeomError::NonPositive(what) => write!(f, "{what} must be positive"),
        }
    }
}

impl Error for GeomError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GeomError>;

pub use floorplan::{Corridor, FloorPlan, Landmark, LandmarkKind, Wall};
pub use frame::{GeoCoord, GeoFrame};
pub use point::{Point, Vector2};
pub use polyline::Polyline;
pub use shapes::{Polygon, Rect, Segment};
