//! Arc-length parameterised polylines.
//!
//! The paper's experiments walk fixed routes: the 320 m daily path of Fig. 2
//! and the eight campus paths of Fig. 4. A [`Polyline`] models such a route;
//! positions along it are addressed by *station* (distance from the start in
//! meters), which is also how the paper plots error ("Distance from the
//! start point (m)").

use crate::point::{Point, Vector2};
use crate::shapes::Segment;
use crate::{GeomError, Result};

/// A connected series of segments with arc-length addressing.
///
/// # Examples
///
/// ```
/// use uniloc_geom::{Point, Polyline};
///
/// let p = Polyline::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(3.0, 4.0),   // 5 m
///     Point::new(3.0, 10.0),  // +6 m
/// ])?;
/// assert_eq!(p.length(), 11.0);
/// let (pt, station) = p.project(Point::new(4.0, 7.0));
/// assert_eq!(pt, Point::new(3.0, 7.0));
/// assert_eq!(station, 8.0);
/// # Ok::<(), uniloc_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    vertices: Vec<Point>,
    /// Cumulative arc length at each vertex; `cum[0] == 0`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Creates a polyline from an ordered vertex list.
    ///
    /// Consecutive duplicate vertices are dropped.
    ///
    /// # Errors
    ///
    /// * [`GeomError::DegeneratePolyline`] — fewer than two distinct
    ///   vertices.
    /// * [`GeomError::NonFinite`] — NaN/inf coordinates.
    pub fn new(vertices: Vec<Point>) -> Result<Self> {
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeomError::NonFinite);
        }
        let mut dedup: Vec<Point> = Vec::with_capacity(vertices.len());
        for v in vertices {
            if dedup.last().is_none_or(|last| last.distance(v) > 0.0) {
                dedup.push(v);
            }
        }
        if dedup.len() < 2 {
            return Err(GeomError::DegeneratePolyline);
        }
        let mut cum = Vec::with_capacity(dedup.len());
        cum.push(0.0);
        for w in dedup.windows(2) {
            let last = *cum.last().expect("cum is never empty");
            cum.push(last + w[0].distance(w[1]));
        }
        Ok(Polyline { vertices: dedup, cum })
    }

    /// Total length in meters.
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("cum is never empty")
    }

    /// The ordered vertices.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// First vertex.
    pub fn start(&self) -> Point {
        self.vertices[0]
    }

    /// Last vertex.
    pub fn end(&self) -> Point {
        *self.vertices.last().expect("polyline has >= 2 vertices")
    }

    /// Segments of the polyline in order.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Position at station `s` (clamped to `[0, length]`).
    pub fn point_at(&self, s: f64) -> Point {
        let s = s.clamp(0.0, self.length());
        let i = match self.cum.binary_search_by(|c| c.partial_cmp(&s).expect("finite")) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        if i >= self.vertices.len() - 1 {
            return self.end();
        }
        let seg_len = self.cum[i + 1] - self.cum[i];
        let t = if seg_len > 0.0 { (s - self.cum[i]) / seg_len } else { 0.0 };
        self.vertices[i].lerp(self.vertices[i + 1], t)
    }

    /// Unit tangent direction at station `s` (direction of travel).
    pub fn direction_at(&self, s: f64) -> Vector2 {
        let s = s.clamp(0.0, self.length());
        let i = match self.cum.binary_search_by(|c| c.partial_cmp(&s).expect("finite")) {
            Ok(i) => i.min(self.vertices.len() - 2),
            Err(i) => i - 1,
        };
        let i = i.min(self.vertices.len() - 2);
        (self.vertices[i + 1] - self.vertices[i])
            .normalized()
            .expect("polyline segments have positive length")
    }

    /// Compass heading of travel at station `s` (radians, 0 = north,
    /// clockwise).
    pub fn heading_at(&self, s: f64) -> f64 {
        self.direction_at(s).heading()
    }

    /// Projects `p` onto the polyline: returns the closest on-path point and
    /// its station.
    pub fn project(&self, p: Point) -> (Point, f64) {
        let mut best = (self.start(), 0.0);
        let mut best_d = f64::INFINITY;
        for (i, seg) in self.segments().enumerate() {
            let q = seg.closest_point(p);
            let d = q.distance(p);
            if d < best_d {
                best_d = d;
                let station = self.cum[i] + self.vertices[i].distance(q);
                best = (q, station);
            }
        }
        best
    }

    /// Samples the polyline every `step` meters from the start (both
    /// endpoints included).
    ///
    /// The paper samples schemes "every 3 m along the trajectories".
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn sample_stations(&self, step: f64) -> Vec<f64> {
        assert!(step > 0.0, "sample step must be positive");
        let len = self.length();
        let mut out = Vec::with_capacity((len / step) as usize + 2);
        let mut s = 0.0;
        while s < len {
            out.push(s);
            s += step;
        }
        out.push(len);
        out
    }

    /// Stations of the interior vertices — i.e. where the path turns. Used
    /// for landmark (turn) placement.
    pub fn turn_stations(&self) -> Vec<f64> {
        self.cum[1..self.cum.len() - 1].to_vec()
    }

    /// Concatenates another polyline whose start coincides with this end.
    pub fn extend_with(&self, other: &Polyline) -> Result<Polyline> {
        let mut v = self.vertices.clone();
        v.extend_from_slice(other.vertices());
        Polyline::new(v)
    }

    /// Reverses the direction of travel.
    pub fn reversed(&self) -> Polyline {
        let mut v = self.vertices.clone();
        v.reverse();
        Polyline::new(v).expect("reversal preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_path() -> Polyline {
        Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(10.0, 5.0)])
            .unwrap()
    }

    #[test]
    fn rejects_degenerate() {
        assert!(matches!(
            Polyline::new(vec![Point::origin()]).unwrap_err(),
            GeomError::DegeneratePolyline
        ));
        // All-duplicate vertices collapse to one.
        assert!(Polyline::new(vec![Point::origin(), Point::origin()]).is_err());
    }

    #[test]
    fn dedups_consecutive_duplicates() {
        let p = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
        ])
        .unwrap();
        assert_eq!(p.vertices().len(), 2);
        assert_eq!(p.length(), 5.0);
    }

    #[test]
    fn length_and_endpoints() {
        let p = l_path();
        assert_eq!(p.length(), 15.0);
        assert_eq!(p.start(), Point::new(0.0, 0.0));
        assert_eq!(p.end(), Point::new(10.0, 5.0));
    }

    #[test]
    fn point_at_stations() {
        let p = l_path();
        assert_eq!(p.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(p.point_at(10.0), Point::new(10.0, 0.0));
        assert_eq!(p.point_at(12.5), Point::new(10.0, 2.5));
        assert_eq!(p.point_at(15.0), Point::new(10.0, 5.0));
        // Clamping.
        assert_eq!(p.point_at(-3.0), p.start());
        assert_eq!(p.point_at(99.0), p.end());
    }

    #[test]
    fn direction_and_heading() {
        let p = l_path();
        // First leg travels east: heading pi/2.
        assert!((p.heading_at(3.0) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // Second leg travels north: heading 0.
        assert!(p.heading_at(12.0).abs() < 1e-12);
        // Exactly at the corner, the next segment's direction applies.
        assert!(p.heading_at(10.0).abs() < 1e-12);
    }

    #[test]
    fn project_interior_and_beyond() {
        let p = l_path();
        let (pt, s) = p.project(Point::new(4.0, -2.0));
        assert_eq!(pt, Point::new(4.0, 0.0));
        assert_eq!(s, 4.0);
        let (pt, s) = p.project(Point::new(20.0, 20.0));
        assert_eq!(pt, Point::new(10.0, 5.0));
        assert_eq!(s, 15.0);
    }

    #[test]
    fn sample_stations_cover_path() {
        let p = l_path();
        let st = p.sample_stations(4.0);
        assert_eq!(st, vec![0.0, 4.0, 8.0, 12.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "sample step must be positive")]
    fn sample_stations_rejects_zero_step() {
        l_path().sample_stations(0.0);
    }

    #[test]
    fn turn_stations_at_corners() {
        assert_eq!(l_path().turn_stations(), vec![10.0]);
    }

    #[test]
    fn extend_and_reverse() {
        let p = l_path();
        let q = Polyline::new(vec![Point::new(10.0, 5.0), Point::new(10.0, 10.0)]).unwrap();
        let joined = p.extend_with(&q).unwrap();
        assert_eq!(joined.length(), 20.0);
        let r = joined.reversed();
        assert_eq!(r.start(), Point::new(10.0, 10.0));
        assert_eq!(r.length(), 20.0);
        assert_eq!(r.point_at(5.0), Point::new(10.0, 5.0));
    }

    #[test]
    fn segments_iterate_in_order() {
        let segs: Vec<Segment> = l_path().segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].a, Point::new(0.0, 0.0));
        assert_eq!(segs[1].b, Point::new(10.0, 5.0));
    }
}
