//! Floor plans: walls, corridors and landmarks.
//!
//! The motion-based PDR scheme the paper implements ("Li et al. [7]")
//! "leverages the map to impose constraints on the user's possible
//! locations": particles die when they cross walls, corridor width bounds
//! lateral drift (error-model factor `beta_2`), and landmarks — "turns,
//! doors and signatures [12]" — reset the accumulated error (factor
//! `beta_1`, distance from the last landmark).

use crate::point::Point;
use crate::polyline::Polyline;
use crate::shapes::Segment;
use crate::{GeomError, Result};

/// An opaque wall segment that blocks pedestrian movement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wall {
    /// Geometry of the wall.
    pub segment: Segment,
}

impl Wall {
    /// Creates a wall from two endpoints.
    pub fn new(a: Point, b: Point) -> Self {
        Wall { segment: Segment::new(a, b) }
    }
}

/// A walkable corridor: a centerline with a physical width.
///
/// The corridor width is the paper's `beta_2` feature for the motion and
/// fusion schemes — "if a corridor or path is wider, it has looser
/// constraint and the localization error is likely to be higher".
#[derive(Debug, Clone, PartialEq)]
pub struct Corridor {
    centerline: Polyline,
    width: f64,
}

impl Corridor {
    /// Creates a corridor.
    ///
    /// # Errors
    ///
    /// [`GeomError::NonPositive`] when `width <= 0`.
    pub fn new(centerline: Polyline, width: f64) -> Result<Self> {
        if width <= 0.0 || !width.is_finite() {
            return Err(GeomError::NonPositive("corridor width"));
        }
        Ok(Corridor { centerline, width })
    }

    /// The corridor centerline.
    pub fn centerline(&self) -> &Polyline {
        &self.centerline
    }

    /// The corridor width in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Distance from `p` to the centerline.
    pub fn distance_to(&self, p: Point) -> f64 {
        let (q, _) = self.centerline.project(p);
        q.distance(p)
    }

    /// Whether `p` lies within the corridor (within half the width of the
    /// centerline).
    pub fn contains(&self, p: Point) -> bool {
        self.distance_to(p) <= self.width / 2.0
    }
}

/// The kinds of landmarks PDR can calibrate against.
///
/// Turns and doors come from the map; signatures are recognizable sensor
/// patterns (WiFi/magnetic) in the spirit of UnLoc [12].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LandmarkKind {
    /// A sharp turn in a corridor.
    Turn,
    /// A doorway.
    Door,
    /// A sensor signature (e.g. a distinctive WiFi or magnetic pattern).
    Signature,
    /// An elevator bank (strong magnetic signature).
    Elevator,
    /// A staircase entrance.
    Stairs,
}

impl std::fmt::Display for LandmarkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LandmarkKind::Turn => "turn",
            LandmarkKind::Door => "door",
            LandmarkKind::Signature => "signature",
            LandmarkKind::Elevator => "elevator",
            LandmarkKind::Stairs => "stairs",
        };
        f.write_str(s)
    }
}

/// A calibration landmark at a known map position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Landmark {
    /// What kind of landmark this is.
    pub kind: LandmarkKind,
    /// Where it sits on the map.
    pub position: Point,
    /// Radius within which a walker reliably detects it (m).
    pub detection_radius: f64,
}

impl Landmark {
    /// Creates a landmark with a detection radius.
    ///
    /// # Errors
    ///
    /// [`GeomError::NonPositive`] when `detection_radius <= 0`.
    pub fn new(kind: LandmarkKind, position: Point, detection_radius: f64) -> Result<Self> {
        if detection_radius <= 0.0 || !detection_radius.is_finite() {
            return Err(GeomError::NonPositive("landmark detection radius"));
        }
        Ok(Landmark { kind, position, detection_radius })
    }

    /// Whether a walker at `p` detects the landmark.
    pub fn detects(&self, p: Point) -> bool {
        self.position.distance(p) <= self.detection_radius
    }
}

/// Walls, corridors and landmarks of one venue.
///
/// # Examples
///
/// ```
/// use uniloc_geom::{FloorPlan, Landmark, LandmarkKind, Point, Polyline, Corridor};
///
/// let mut plan = FloorPlan::new();
/// plan.add_wall(Point::new(0.0, 2.0), Point::new(20.0, 2.0));
/// plan.add_wall(Point::new(0.0, -2.0), Point::new(20.0, -2.0));
/// let center = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(20.0, 0.0)])?;
/// plan.add_corridor(Corridor::new(center, 4.0)?);
/// plan.add_landmark(Landmark::new(LandmarkKind::Door, Point::new(10.0, 0.0), 2.0)?);
///
/// // A step across the north wall is blocked:
/// assert!(plan.blocks(Point::new(5.0, 1.0), Point::new(5.0, 3.0)));
/// // Walking along the corridor is not:
/// assert!(!plan.blocks(Point::new(5.0, 0.0), Point::new(6.0, 0.0)));
/// assert_eq!(plan.corridor_width_at(Point::new(5.0, 0.0)), Some(4.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FloorPlan {
    walls: Vec<Wall>,
    corridors: Vec<Corridor>,
    landmarks: Vec<Landmark>,
}

impl FloorPlan {
    /// Creates an empty floor plan (open space: no constraints).
    pub fn new() -> Self {
        FloorPlan::default()
    }

    /// Adds a wall between two points.
    pub fn add_wall(&mut self, a: Point, b: Point) -> &mut Self {
        self.walls.push(Wall::new(a, b));
        self
    }

    /// Adds a corridor.
    pub fn add_corridor(&mut self, c: Corridor) -> &mut Self {
        self.corridors.push(c);
        self
    }

    /// Adds a landmark.
    pub fn add_landmark(&mut self, l: Landmark) -> &mut Self {
        self.landmarks.push(l);
        self
    }

    /// All walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// All corridors.
    pub fn corridors(&self) -> &[Corridor] {
        &self.corridors
    }

    /// All landmarks.
    pub fn landmarks(&self) -> &[Landmark] {
        &self.landmarks
    }

    /// Whether a straight move from `a` to `b` crosses any wall.
    pub fn blocks(&self, a: Point, b: Point) -> bool {
        let step = Segment::new(a, b);
        self.walls.iter().any(|w| w.segment.intersects(&step))
    }

    /// The first wall a straight move from `a` to `b` crosses (closest
    /// intersection to `a`), if any. Used by particle filters to slide
    /// blocked motion along the obstacle.
    pub fn blocking_wall(&self, a: Point, b: Point) -> Option<&Wall> {
        let step = Segment::new(a, b);
        self.walls
            .iter()
            .filter_map(|w| w.segment.intersection(&step).map(|p| (w, a.distance_sq(p))))
            .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite distances"))
            .map(|(w, _)| w)
    }

    /// Width of the corridor containing `p`, or the nearest corridor if none
    /// contains it and one lies within `2 * width`; `None` in open space.
    pub fn corridor_width_at(&self, p: Point) -> Option<f64> {
        // Prefer a corridor that actually contains the point.
        if let Some(c) = self
            .corridors
            .iter()
            .filter(|c| c.contains(p))
            .min_by(|a, b| {
                a.distance_to(p).partial_cmp(&b.distance_to(p)).expect("finite distances")
            })
        {
            return Some(c.width());
        }
        self.corridors
            .iter()
            .filter(|c| c.distance_to(p) <= 2.0 * c.width())
            .min_by(|a, b| {
                a.distance_to(p).partial_cmp(&b.distance_to(p)).expect("finite distances")
            })
            .map(Corridor::width)
    }

    /// The landmark detectable from `p` (closest wins), if any.
    pub fn detected_landmark(&self, p: Point) -> Option<&Landmark> {
        self.landmarks
            .iter()
            .filter(|l| l.detects(p))
            .min_by(|a, b| {
                a.position
                    .distance(p)
                    .partial_cmp(&b.position.distance(p))
                    .expect("finite distances")
            })
    }

    /// Distance from `p` to the nearest landmark (INFINITY when none exist).
    pub fn nearest_landmark_distance(&self, p: Point) -> f64 {
        self.landmarks.iter().map(|l| l.position.distance(p)).fold(f64::INFINITY, f64::min)
    }

    /// Merges another floor plan into this one (e.g. composing a campus from
    /// per-building plans).
    pub fn merge(&mut self, other: FloorPlan) -> &mut Self {
        self.walls.extend(other.walls);
        self.corridors.extend(other.corridors);
        self.landmarks.extend(other.landmarks);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor_plan() -> FloorPlan {
        let mut plan = FloorPlan::new();
        plan.add_wall(Point::new(0.0, 2.0), Point::new(20.0, 2.0));
        plan.add_wall(Point::new(0.0, -2.0), Point::new(20.0, -2.0));
        let center =
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(20.0, 0.0)]).unwrap();
        plan.add_corridor(Corridor::new(center, 4.0).unwrap());
        plan.add_landmark(
            Landmark::new(LandmarkKind::Turn, Point::new(0.0, 0.0), 1.5).unwrap(),
        );
        plan.add_landmark(
            Landmark::new(LandmarkKind::Door, Point::new(10.0, 0.0), 1.5).unwrap(),
        );
        plan
    }

    #[test]
    fn corridor_validation() {
        let line = Polyline::new(vec![Point::origin(), Point::new(1.0, 0.0)]).unwrap();
        assert!(Corridor::new(line.clone(), 0.0).is_err());
        assert!(Corridor::new(line.clone(), -1.0).is_err());
        assert!(Corridor::new(line, 2.0).is_ok());
    }

    #[test]
    fn corridor_containment() {
        let line = Polyline::new(vec![Point::origin(), Point::new(10.0, 0.0)]).unwrap();
        let c = Corridor::new(line, 4.0).unwrap();
        assert!(c.contains(Point::new(5.0, 1.9)));
        assert!(c.contains(Point::new(5.0, 2.0)));
        assert!(!c.contains(Point::new(5.0, 2.1)));
        assert_eq!(c.distance_to(Point::new(5.0, 3.0)), 3.0);
    }

    #[test]
    fn landmark_validation_and_detection() {
        assert!(Landmark::new(LandmarkKind::Door, Point::origin(), 0.0).is_err());
        let l = Landmark::new(LandmarkKind::Signature, Point::new(1.0, 1.0), 2.0).unwrap();
        assert!(l.detects(Point::new(2.0, 2.0)));
        assert!(!l.detects(Point::new(4.0, 4.0)));
    }

    #[test]
    fn walls_block_crossing_steps() {
        let plan = corridor_plan();
        assert!(plan.blocks(Point::new(5.0, 1.0), Point::new(5.0, 3.0)));
        assert!(plan.blocks(Point::new(5.0, -3.0), Point::new(5.0, 3.0)));
        assert!(!plan.blocks(Point::new(1.0, 0.0), Point::new(19.0, 0.0)));
    }

    #[test]
    fn corridor_width_lookup() {
        let plan = corridor_plan();
        assert_eq!(plan.corridor_width_at(Point::new(5.0, 0.0)), Some(4.0));
        // Near but outside: still attributed to the corridor.
        assert_eq!(plan.corridor_width_at(Point::new(5.0, 5.0)), Some(4.0));
        // Far away: open space.
        assert_eq!(plan.corridor_width_at(Point::new(5.0, 50.0)), None);
    }

    #[test]
    fn corridor_width_prefers_containing() {
        let mut plan = FloorPlan::new();
        let wide = Corridor::new(
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]).unwrap(),
            8.0,
        )
        .unwrap();
        let narrow = Corridor::new(
            Polyline::new(vec![Point::new(0.0, 3.0), Point::new(10.0, 3.0)]).unwrap(),
            1.0,
        )
        .unwrap();
        plan.add_corridor(wide).add_corridor(narrow);
        // (5, 2.0) is inside the wide corridor (|2.0| < 4) but outside the
        // narrow one (|2.0 - 3.0| > 0.5), even though the narrow centerline
        // is closer.
        assert_eq!(plan.corridor_width_at(Point::new(5.0, 2.0)), Some(8.0));
        // A point inside both picks the closer centerline.
        assert_eq!(plan.corridor_width_at(Point::new(5.0, 2.9)), Some(1.0));
    }

    #[test]
    fn landmark_queries() {
        let plan = corridor_plan();
        let hit = plan.detected_landmark(Point::new(10.5, 0.0)).unwrap();
        assert_eq!(hit.kind, LandmarkKind::Door);
        assert!(plan.detected_landmark(Point::new(5.0, 0.0)).is_none());
        assert_eq!(plan.nearest_landmark_distance(Point::new(5.0, 0.0)), 5.0);
    }

    #[test]
    fn empty_plan_is_unconstrained() {
        let plan = FloorPlan::new();
        assert!(!plan.blocks(Point::origin(), Point::new(100.0, 100.0)));
        assert_eq!(plan.corridor_width_at(Point::origin()), None);
        assert!(plan.detected_landmark(Point::origin()).is_none());
        assert_eq!(plan.nearest_landmark_distance(Point::origin()), f64::INFINITY);
    }

    #[test]
    fn merge_combines_elements() {
        let mut a = corridor_plan();
        let mut b = FloorPlan::new();
        b.add_wall(Point::new(30.0, 0.0), Point::new(40.0, 0.0));
        a.merge(b);
        assert_eq!(a.walls().len(), 3);
        assert_eq!(a.corridors().len(), 1);
        assert_eq!(a.landmarks().len(), 2);
    }

    #[test]
    fn landmark_kind_display() {
        assert_eq!(LandmarkKind::Turn.to_string(), "turn");
        assert_eq!(LandmarkKind::Signature.to_string(), "signature");
    }
}
