//! Geographic <-> local map coordinate conversion.
//!
//! "GPS reports the absolute coordinate (i.e., latitude and longitude) in the
//! geographic coordinate system. [...] To combine the results of multiple
//! schemes, we convert the result of GPS to the map coordinate by the public
//! digital map information." (paper, Section IV-B). [`GeoFrame`] implements
//! that conversion with a local tangent-plane (equirectangular)
//! approximation, which is accurate to centimeters over a campus-sized map.

use crate::point::Point;
use crate::{GeomError, Result};

/// Mean Earth radius in meters (WGS-84 spherical approximation).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A geographic coordinate in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoCoord {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

uniloc_stats::impl_json_struct!(GeoCoord { lat, lon });

impl GeoCoord {
    /// Creates a coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NonFinite`] for out-of-range or non-finite
    /// values (|lat| > 90, |lon| > 180).
    pub fn new(lat: f64, lon: f64) -> Result<Self> {
        if !lat.is_finite() || !lon.is_finite() || lat.abs() > 90.0 || lon.abs() > 180.0 {
            return Err(GeomError::NonFinite);
        }
        Ok(GeoCoord { lat, lon })
    }
}

/// A local tangent-plane frame anchored at a geographic origin.
///
/// Map `x` points east, map `y` points north, and the anchor geographic
/// coordinate maps to a chosen anchor map point (typically the origin).
///
/// # Examples
///
/// ```
/// use uniloc_geom::{GeoCoord, GeoFrame, Point};
///
/// // Anchor the campus map at NTU, Singapore.
/// let frame = GeoFrame::new(GeoCoord::new(1.3483, 103.6831)?, Point::origin());
/// let gps_fix = GeoCoord::new(1.3492, 103.6831)?; // ~100 m north
/// let local = frame.to_local(gps_fix);
/// assert!(local.x.abs() < 0.5);
/// assert!((local.y - 100.0).abs() < 1.0);
/// // Round trip.
/// let back = frame.to_geo(local);
/// assert!((back.lat - gps_fix.lat).abs() < 1e-9);
/// # Ok::<(), uniloc_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoFrame {
    origin_geo: GeoCoord,
    origin_map: Point,
    /// Meters per degree of latitude at the anchor.
    m_per_deg_lat: f64,
    /// Meters per degree of longitude at the anchor.
    m_per_deg_lon: f64,
}

impl GeoFrame {
    /// Creates a frame mapping `origin_geo` to `origin_map`.
    pub fn new(origin_geo: GeoCoord, origin_map: Point) -> Self {
        let rad = std::f64::consts::PI / 180.0;
        let m_per_deg_lat = EARTH_RADIUS_M * rad;
        let m_per_deg_lon = EARTH_RADIUS_M * rad * (origin_geo.lat * rad).cos();
        GeoFrame { origin_geo, origin_map, m_per_deg_lat, m_per_deg_lon }
    }

    /// The geographic anchor.
    pub fn origin_geo(&self) -> GeoCoord {
        self.origin_geo
    }

    /// The map anchor.
    pub fn origin_map(&self) -> Point {
        self.origin_map
    }

    /// Converts a geographic coordinate to local map meters.
    pub fn to_local(&self, g: GeoCoord) -> Point {
        Point::new(
            self.origin_map.x + (g.lon - self.origin_geo.lon) * self.m_per_deg_lon,
            self.origin_map.y + (g.lat - self.origin_geo.lat) * self.m_per_deg_lat,
        )
    }

    /// Converts a local map point back to a geographic coordinate.
    pub fn to_geo(&self, p: Point) -> GeoCoord {
        GeoCoord {
            lat: self.origin_geo.lat + (p.y - self.origin_map.y) / self.m_per_deg_lat,
            lon: self.origin_geo.lon + (p.x - self.origin_map.x) / self.m_per_deg_lon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn singapore_frame() -> GeoFrame {
        GeoFrame::new(GeoCoord::new(1.3483, 103.6831).unwrap(), Point::origin())
    }

    #[test]
    fn geocoord_validates_range() {
        assert!(GeoCoord::new(91.0, 0.0).is_err());
        assert!(GeoCoord::new(0.0, 181.0).is_err());
        assert!(GeoCoord::new(f64::NAN, 0.0).is_err());
        assert!(GeoCoord::new(-90.0, 180.0).is_ok());
    }

    #[test]
    fn north_displacement() {
        let f = singapore_frame();
        // One arcminute of latitude is one nautical mile ~ 1853.2 m (for the
        // mean-radius sphere; WGS84 gives ~1855 at the poles and 1843 at the
        // equator).
        let g = GeoCoord::new(1.3483 + 1.0 / 60.0, 103.6831).unwrap();
        let p = f.to_local(g);
        assert!(p.x.abs() < 1e-9);
        assert!((p.y - 1853.2).abs() < 1.0, "got {}", p.y);
    }

    #[test]
    fn east_displacement_scales_with_latitude() {
        let eq = GeoFrame::new(GeoCoord::new(0.0, 0.0).unwrap(), Point::origin());
        let mid = GeoFrame::new(GeoCoord::new(60.0, 0.0).unwrap(), Point::origin());
        let g_eq = GeoCoord::new(0.0, 0.001).unwrap();
        let g_mid = GeoCoord::new(60.0, 0.001).unwrap();
        let x_eq = eq.to_local(g_eq).x;
        let x_mid = mid.to_local(g_mid).x;
        // cos(60 deg) = 0.5.
        assert!((x_mid / x_eq - 0.5).abs() < 1e-6);
    }

    #[test]
    fn roundtrip_geo_local_geo() {
        let f = singapore_frame();
        for (dlat, dlon) in [(0.0, 0.0), (0.001, 0.002), (-0.003, 0.001)] {
            let g = GeoCoord::new(1.3483 + dlat, 103.6831 + dlon).unwrap();
            let back = f.to_geo(f.to_local(g));
            assert!((back.lat - g.lat).abs() < 1e-12);
            assert!((back.lon - g.lon).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_local_geo_local() {
        let f = GeoFrame::new(GeoCoord::new(1.3483, 103.6831).unwrap(), Point::new(100.0, 50.0));
        let p = Point::new(320.0, -45.0);
        let back = f.to_local(f.to_geo(p));
        assert!((back.x - p.x).abs() < 1e-9);
        assert!((back.y - p.y).abs() < 1e-9);
    }

    #[test]
    fn anchor_maps_to_anchor() {
        let f = GeoFrame::new(GeoCoord::new(1.3, 103.7).unwrap(), Point::new(10.0, 20.0));
        let p = f.to_local(f.origin_geo());
        assert_eq!(p, Point::new(10.0, 20.0));
    }
}
