//! Points and vectors in the 2-D map plane (meters).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A position on the local map, in meters.
///
/// # Examples
///
/// ```
/// use uniloc_geom::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East coordinate (m).
    pub x: f64,
    /// North coordinate (m).
    pub y: f64,
}

uniloc_stats::impl_json_struct!(Point { x, y });

impl Point {
    /// Creates a point from map coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The map origin `(0, 0)`.
    pub fn origin() -> Self {
        Point { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance (avoids the square root).
    pub fn distance_sq(self, other: Point) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point { x: self.x + (other.x - self.x) * t, y: self.y + (other.y - self.y) * t }
    }

    /// Component-wise midpoint.
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// True when both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Vector from this point to `other`.
    pub fn vector_to(self, other: Point) -> Vector2 {
        other - self
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A displacement in the map plane, in meters.
///
/// # Examples
///
/// ```
/// use uniloc_geom::Vector2;
///
/// // Walking one step of 0.7 m due east:
/// let step = Vector2::from_heading(std::f64::consts::FRAC_PI_2, 0.7);
/// assert!((step.x - 0.7).abs() < 1e-12);
/// assert!(step.y.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector2 {
    /// East component (m).
    pub x: f64,
    /// North component (m).
    pub y: f64,
}

impl Vector2 {
    /// Creates a vector from components.
    pub fn new(x: f64, y: f64) -> Self {
        Vector2 { x, y }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Vector2 { x: 0.0, y: 0.0 }
    }

    /// A displacement of `length` meters along `heading` radians, where
    /// heading 0 is north (+y) and grows clockwise (compass convention, as a
    /// phone magnetometer reports it).
    pub fn from_heading(heading: f64, length: f64) -> Self {
        Vector2 { x: heading.sin() * length, y: heading.cos() * length }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vector2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    pub fn cross(self, other: Vector2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or `None` for the zero vector.
    pub fn normalized(self) -> Option<Vector2> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Compass heading in radians (`0` = north/+y, clockwise positive,
    /// range `[0, 2*pi)`).
    pub fn heading(self) -> f64 {
        let h = self.x.atan2(self.y);
        if h < 0.0 {
            h + 2.0 * std::f64::consts::PI
        } else {
            h
        }
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vector2 {
        let (s, c) = angle.sin_cos();
        Vector2 { x: c * self.x - s * self.y, y: s * self.x + c * self.y }
    }

    /// The perpendicular vector (rotated 90 degrees counter-clockwise).
    pub fn perp(self) -> Vector2 {
        Vector2 { x: -self.y, y: self.x }
    }
}

impl Add<Vector2> for Point {
    type Output = Point;
    fn add(self, v: Vector2) -> Point {
        Point { x: self.x + v.x, y: self.y + v.y }
    }
}

impl AddAssign<Vector2> for Point {
    fn add_assign(&mut self, v: Vector2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub for Point {
    type Output = Vector2;
    fn sub(self, other: Point) -> Vector2 {
        Vector2 { x: self.x - other.x, y: self.y - other.y }
    }
}

impl Sub<Vector2> for Point {
    type Output = Point;
    fn sub(self, v: Vector2) -> Point {
        Point { x: self.x - v.x, y: self.y - v.y }
    }
}

impl Add for Vector2 {
    type Output = Vector2;
    fn add(self, other: Vector2) -> Vector2 {
        Vector2 { x: self.x + other.x, y: self.y + other.y }
    }
}

impl Sub for Vector2 {
    type Output = Vector2;
    fn sub(self, other: Vector2) -> Vector2 {
        Vector2 { x: self.x - other.x, y: self.y - other.y }
    }
}

impl Mul<f64> for Vector2 {
    type Output = Vector2;
    fn mul(self, k: f64) -> Vector2 {
        Vector2 { x: self.x * k, y: self.y * k }
    }
}

impl Div<f64> for Vector2 {
    type Output = Vector2;
    fn div(self, k: f64) -> Vector2 {
        Vector2 { x: self.x / k, y: self.y / k }
    }
}

impl Neg for Vector2 {
    type Output = Vector2;
    fn neg(self) -> Vector2 {
        Vector2 { x: -self.x, y: -self.y }
    }
}

impl fmt::Display for Vector2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.2}, {:.2}>", self.x, self.y)
    }
}

/// Normalizes an angle to `[0, 2*pi)`.
pub fn wrap_angle(a: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut a = a % two_pi;
    if a < 0.0 {
        a += two_pi;
    }
    a
}

/// Smallest signed difference `a - b` between two angles, in `(-pi, pi]`.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    let pi = std::f64::consts::PI;
    let mut d = (a - b) % (2.0 * pi);
    if d > pi {
        d -= 2.0 * pi;
    } else if d <= -pi {
        d += 2.0 * pi;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_and_midpoint() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.midpoint(b), Point::new(2.5, 3.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point::new(2.5, -1.0));
    }

    #[test]
    fn heading_compass_convention() {
        // North.
        assert!((Vector2::new(0.0, 1.0).heading()).abs() < 1e-12);
        // East.
        assert!((Vector2::new(1.0, 0.0).heading() - FRAC_PI_2).abs() < 1e-12);
        // South.
        assert!((Vector2::new(0.0, -1.0).heading() - PI).abs() < 1e-12);
        // West.
        assert!((Vector2::new(-1.0, 0.0).heading() - 1.5 * PI).abs() < 1e-12);
    }

    #[test]
    fn from_heading_roundtrip() {
        for i in 0..16 {
            let h = i as f64 * PI / 8.0;
            let v = Vector2::from_heading(h, 2.0);
            assert!((v.norm() - 2.0).abs() < 1e-12);
            assert!((wrap_angle(v.heading() - h)).min(2.0 * PI - wrap_angle(v.heading() - h)) < 1e-9);
        }
    }

    #[test]
    fn dot_and_cross() {
        let a = Vector2::new(1.0, 0.0);
        let b = Vector2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vector2::zero().normalized().is_none());
        let u = Vector2::new(3.0, 4.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vector2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((v.x).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
        let p = Vector2::new(1.0, 0.0).perp();
        assert_eq!(p, Vector2::new(0.0, 1.0));
    }

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 2.0);
        let v = Vector2::new(0.5, -1.0);
        assert_eq!(p + v, Point::new(1.5, 1.0));
        let mut q = p;
        q += v;
        assert_eq!(q, p + v);
        assert_eq!((p + v) - p, v);
        assert_eq!(-v, Vector2::new(-0.5, 1.0));
        assert_eq!(v * 2.0, Vector2::new(1.0, -2.0));
        assert_eq!(v / 0.5, Vector2::new(1.0, -2.0));
    }

    #[test]
    fn wrap_and_diff() {
        assert!((wrap_angle(-0.1) - (2.0 * PI - 0.1)).abs() < 1e-12);
        assert!((wrap_angle(2.0 * PI + 0.3) - 0.3).abs() < 1e-12);
        assert!((angle_diff(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-12);
        assert!((angle_diff(2.0 * PI - 0.1, 0.1) + 0.2).abs() < 1e-12);
        assert!((angle_diff(PI, 0.0) - PI).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1.00, 2.00)");
        assert_eq!(Vector2::new(1.0, 2.0).to_string(), "<1.00, 2.00>");
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
