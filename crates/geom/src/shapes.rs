//! Segments, rectangles and polygons — the building blocks of zones and
//! walls.

use crate::point::{Point, Vector2};
use crate::{GeomError, Result};

/// A line segment between two points.
///
/// Walls in a [`crate::FloorPlan`] are segments; the PDR particle filter
/// kills particles whose step crosses one.
///
/// # Examples
///
/// ```
/// use uniloc_geom::{Point, Segment};
///
/// let wall = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
/// assert_eq!(wall.distance_to(Point::new(5.0, 3.0)), 3.0);
/// let step = Segment::new(Point::new(5.0, -1.0), Point::new(5.0, 1.0));
/// assert!(wall.intersects(&step));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from endpoints.
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let ab = self.b - self.a;
        let denom = ab.norm_sq();
        if denom == 0.0 {
            return self.a;
        }
        let t = ((p - self.a).dot(ab) / denom).clamp(0.0, 1.0);
        self.a + ab * t
    }

    /// Distance from `p` to the segment.
    pub fn distance_to(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Whether two segments properly intersect or touch.
    pub fn intersects(&self, other: &Segment) -> bool {
        self.intersection(other).is_some()
    }

    /// Intersection point of two segments, if any. Collinear overlapping
    /// segments report the first shared endpoint.
    pub fn intersection(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        let qp = other.a - self.a;
        if denom == 0.0 {
            // Parallel. Collinear if qp x r == 0.
            if qp.cross(r) != 0.0 {
                return None;
            }
            // Collinear: project other's endpoints onto self.
            let len_sq = r.norm_sq();
            if len_sq == 0.0 {
                return (self.a == other.a || self.a.distance(other.closest_point(self.a)) == 0.0)
                    .then_some(self.a);
            }
            let t0 = (other.a - self.a).dot(r) / len_sq;
            let t1 = (other.b - self.a).dot(r) / len_sq;
            let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            if hi < 0.0 || lo > 1.0 {
                return None;
            }
            let t = lo.max(0.0);
            return Some(self.a + r * t);
        }
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            Some(self.a + r * t)
        } else {
            None
        }
    }
}

/// An axis-aligned rectangle, used for room/zone footprints and fingerprint
/// survey extents.
///
/// # Examples
///
/// ```
/// use uniloc_geom::{Point, Rect};
///
/// // The paper's training office is 56 x 20 m^2.
/// let office = Rect::new(Point::new(0.0, 0.0), Point::new(56.0, 20.0))?;
/// assert_eq!(office.area(), 1120.0);
/// assert!(office.contains(Point::new(10.0, 10.0)));
/// # Ok::<(), uniloc_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NonFinite`] for non-finite corners.
    pub fn new(a: Point, b: Point) -> Result<Self> {
        if !a.is_finite() || !b.is_finite() {
            return Err(GeomError::NonFinite);
        }
        Ok(Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        })
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square meters.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }

    /// Grows the rectangle by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// The polygon with the rectangle's four corners (counter-clockwise).
    pub fn to_polygon(&self) -> Polygon {
        Polygon::new(vec![
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ])
        .expect("rectangle corners always form a valid polygon")
    }

    /// Generates grid points with spacing `step`, inset by `step / 2` from
    /// the boundary — the layout used when surveying RSSI fingerprints.
    pub fn grid(&self, step: f64) -> Vec<Point> {
        assert!(step > 0.0, "grid step must be positive");
        let mut out = Vec::new();
        let mut y = self.min.y + step / 2.0;
        while y < self.max.y {
            let mut x = self.min.x + step / 2.0;
            while x < self.max.x {
                out.push(Point::new(x, y));
                x += step;
            }
            y += step;
        }
        out
    }
}

/// A simple polygon (no self-intersection expected) used for zone outlines.
///
/// # Examples
///
/// ```
/// use uniloc_geom::{Point, Polygon};
///
/// let tri = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 3.0),
/// ])?;
/// assert!(tri.contains(Point::new(1.0, 1.0)));
/// assert!(!tri.contains(Point::new(3.0, 3.0)));
/// assert_eq!(tri.area(), 6.0);
/// # Ok::<(), uniloc_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// # Errors
    ///
    /// * [`GeomError::DegeneratePolygon`] — fewer than three vertices.
    /// * [`GeomError::NonFinite`] — NaN/inf coordinates.
    pub fn new(vertices: Vec<Point>) -> Result<Self> {
        if vertices.len() < 3 {
            return Err(GeomError::DegeneratePolygon);
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeomError::NonFinite);
        }
        Ok(Polygon { vertices })
    }

    /// The vertices in order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Edges as segments (closing edge included).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut s = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            s += p.x * q.y - q.x * p.y;
        }
        s / 2.0
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Vertex centroid (arithmetic mean of the vertices).
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len() as f64;
        let (sx, sy) = self
            .vertices
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Point::new(sx / n, sy / n)
    }

    /// Even-odd point-in-polygon test (boundary points count as inside for
    /// horizontal-ray crossings in the standard way).
    pub fn contains(&self, p: Point) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Distance from `p` to the polygon boundary (zero only on the
    /// boundary itself).
    pub fn boundary_distance(&self, p: Point) -> f64 {
        self.edges().map(|e| e.distance_to(p)).fold(f64::INFINITY, f64::min)
    }

    /// Axis-aligned bounding rectangle.
    pub fn bounding_rect(&self) -> Rect {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices {
            min = Point::new(min.x.min(v.x), min.y.min(v.y));
            max = Point::new(max.x.max(v.x), max.y.max(v.y));
        }
        Rect::new(min, max).expect("finite vertices imply a finite rect")
    }

    /// Translates all vertices by `v`.
    pub fn translated(&self, v: Vector2) -> Polygon {
        Polygon { vertices: self.vertices.iter().map(|p| *p + v).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_closest_point_clamps_to_endpoints() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.closest_point(Point::new(-5.0, 2.0)), Point::new(0.0, 0.0));
        assert_eq!(s.closest_point(Point::new(15.0, 2.0)), Point::new(10.0, 0.0));
        assert_eq!(s.closest_point(Point::new(4.0, 2.0)), Point::new(4.0, 0.0));
    }

    #[test]
    fn segment_intersection_crossing() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let b = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        let p = a.intersection(&b).unwrap();
        assert!((p.x - 2.0).abs() < 1e-12 && (p.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn segment_intersection_disjoint() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let b = Segment::new(Point::new(2.0, 1.0), Point::new(3.0, 1.0));
        assert!(a.intersection(&b).is_none());
        assert!(!a.intersects(&b));
    }

    #[test]
    fn segment_intersection_parallel_non_collinear() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        let b = Segment::new(Point::new(0.0, 1.0), Point::new(4.0, 1.0));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn segment_intersection_collinear_overlap() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        let b = Segment::new(Point::new(2.0, 0.0), Point::new(6.0, 0.0));
        assert_eq!(a.intersection(&b), Some(Point::new(2.0, 0.0)));
        let c = Segment::new(Point::new(5.0, 0.0), Point::new(6.0, 0.0));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn segment_touching_endpoint_counts() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let b = Segment::new(Point::new(2.0, 0.0), Point::new(2.0, 5.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn rect_basics() {
        let r = Rect::new(Point::new(5.0, 3.0), Point::new(1.0, 7.0)).unwrap();
        assert_eq!(r.min(), Point::new(1.0, 3.0));
        assert_eq!(r.max(), Point::new(5.0, 7.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.center(), Point::new(3.0, 5.0));
        assert!(r.contains(Point::new(1.0, 3.0)));
        assert!(!r.contains(Point::new(0.9, 3.0)));
        assert_eq!(r.clamp(Point::new(-10.0, 100.0)), Point::new(1.0, 7.0));
    }

    #[test]
    fn rect_rejects_nan() {
        assert!(Rect::new(Point::new(f64::NAN, 0.0), Point::origin()).is_err());
    }

    #[test]
    fn rect_grid_spacing() {
        let r = Rect::new(Point::origin(), Point::new(10.0, 10.0)).unwrap();
        let g = r.grid(5.0);
        assert_eq!(g.len(), 4);
        assert!(g.contains(&Point::new(2.5, 2.5)));
        assert!(g.contains(&Point::new(7.5, 7.5)));
        // Finer grid has quadratically more points.
        assert_eq!(r.grid(2.5).len(), 16);
    }

    #[test]
    fn rect_expanded() {
        let r = Rect::new(Point::origin(), Point::new(2.0, 2.0)).unwrap();
        let e = r.expanded(1.0);
        assert_eq!(e.min(), Point::new(-1.0, -1.0));
        assert_eq!(e.max(), Point::new(3.0, 3.0));
    }

    #[test]
    fn polygon_requires_three_vertices() {
        assert!(matches!(
            Polygon::new(vec![Point::origin(), Point::new(1.0, 0.0)]).unwrap_err(),
            GeomError::DegeneratePolygon
        ));
    }

    #[test]
    fn polygon_contains_concave() {
        // L-shape.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        assert!(l.contains(Point::new(1.0, 3.0)));
        assert!(l.contains(Point::new(3.0, 1.0)));
        assert!(!l.contains(Point::new(3.0, 3.0))); // in the notch
        assert_eq!(l.area(), 12.0);
    }

    #[test]
    fn polygon_area_sign() {
        let ccw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ])
        .unwrap();
        assert!(ccw.signed_area() > 0.0);
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(cw.signed_area() < 0.0);
        assert_eq!(cw.area(), ccw.area());
    }

    #[test]
    fn polygon_centroid_and_bbox() {
        let sq = Rect::new(Point::origin(), Point::new(2.0, 2.0)).unwrap().to_polygon();
        assert_eq!(sq.centroid(), Point::new(1.0, 1.0));
        let bb = sq.bounding_rect();
        assert_eq!(bb.min(), Point::origin());
        assert_eq!(bb.max(), Point::new(2.0, 2.0));
    }

    #[test]
    fn polygon_boundary_distance() {
        let sq = Rect::new(Point::origin(), Point::new(4.0, 4.0)).unwrap().to_polygon();
        assert_eq!(sq.boundary_distance(Point::new(2.0, 2.0)), 2.0);
        assert_eq!(sq.boundary_distance(Point::new(2.0, 5.0)), 1.0);
        assert_eq!(sq.boundary_distance(Point::new(0.0, 2.0)), 0.0);
    }

    #[test]
    fn polygon_translation() {
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap();
        let moved = tri.translated(Vector2::new(10.0, 5.0));
        assert_eq!(moved.vertices()[0], Point::new(10.0, 5.0));
        assert_eq!(moved.area(), tri.area());
    }

    #[test]
    fn polygon_edge_count() {
        let sq = Rect::new(Point::origin(), Point::new(1.0, 1.0)).unwrap().to_polygon();
        assert_eq!(sq.edges().count(), 4);
    }
}
