//! Property-based tests for the sensor layer.

use proptest::prelude::*;
use uniloc_geom::GeoCoord;
use uniloc_sensors::nmea::{encode_gga, parse_gga};
use uniloc_sensors::{DeviceProfile, GpsFix, RssiCalibration, WifiScan};
use uniloc_env::ApId;

proptest! {
    /// NMEA GGA encoding round-trips any valid fix to within the format's
    /// 0.0001-arcminute resolution (~2e-6 degrees).
    #[test]
    fn gga_roundtrip(
        lat in -89.9f64..89.9,
        lon in -179.9f64..179.9,
        hdop in 0.1f64..20.0,
        sats in 4u32..14,
        t in 0.0f64..86_400.0,
    ) {
        let fix = GpsFix {
            coordinate: GeoCoord::new(lat, lon).unwrap(),
            hdop,
            satellites: sats,
        };
        let sentence = encode_gga(&fix, t);
        let back = parse_gga(&sentence).unwrap();
        prop_assert!((back.coordinate.lat - lat).abs() < 2e-6, "{sentence}");
        prop_assert!((back.coordinate.lon - lon).abs() < 2e-6, "{sentence}");
        prop_assert_eq!(back.satellites, sats);
        prop_assert!((back.hdop - hdop).abs() <= 0.05 + 1e-9, "{sentence}");
    }

    /// Corrupting any payload character breaks the checksum (or produces a
    /// parse error) — never a silently wrong fix.
    #[test]
    fn gga_detects_single_byte_corruption(
        lat in -89.0f64..89.0,
        lon in -179.0f64..179.0,
        pos in 1usize..20,
        replacement in proptest::char::range('0', '9'),
    ) {
        let fix = GpsFix {
            coordinate: GeoCoord::new(lat, lon).unwrap(),
            hdop: 1.0,
            satellites: 8,
        };
        let sentence = encode_gga(&fix, 0.0);
        let mut bytes: Vec<char> = sentence.chars().collect();
        let idx = 7 + (pos % 12); // inside the time/lat fields
        if bytes[idx] != replacement && bytes[idx].is_ascii_digit() {
            bytes[idx] = replacement;
            let corrupted: String = bytes.into_iter().collect();
            prop_assert!(parse_gga(&corrupted).is_err(), "{corrupted}");
        }
    }

    /// The RSSI calibration inverts any affine device transfer exactly when
    /// learned from noise-free pairs.
    #[test]
    fn calibration_inverts_affine_transfer(
        alpha in 0.8f64..1.2,
        delta in -10.0f64..10.0,
    ) {
        let pairs: Vec<(f64, f64)> = (0..24)
            .map(|i| {
                let truth = -35.0 - i as f64 * 2.3;
                (alpha * truth + delta, truth)
            })
            .collect();
        let cal = RssiCalibration::learn(&pairs).unwrap();
        for truth in [-40.0, -63.7, -88.0] {
            let recovered = cal.apply(alpha * truth + delta);
            prop_assert!((recovered - truth).abs() < 1e-6);
        }
    }

    /// Scan distance is a semi-metric on common-AP scans: symmetric,
    /// non-negative, zero on identity.
    #[test]
    fn scan_distance_semimetric(
        a in proptest::collection::btree_map(0u32..8, -90.0f64..-30.0, 1..6),
        b in proptest::collection::btree_map(0u32..8, -90.0f64..-30.0, 1..6),
    ) {
        let sa = WifiScan { readings: a.into_iter().map(|(i, r)| (ApId(i), r)).collect() };
        let sb = WifiScan { readings: b.into_iter().map(|(i, r)| (ApId(i), r)).collect() };
        prop_assert_eq!(sa.distance(&sa, 12.0), Some(0.0));
        match (sa.distance(&sb, 12.0), sb.distance(&sa, 12.0)) {
            (Some(x), Some(y)) => {
                prop_assert!((x - y).abs() < 1e-12, "asymmetric: {x} vs {y}");
                prop_assert!(x >= 0.0);
            }
            (None, None) => {}
            other => prop_assert!(false, "asymmetric availability {other:?}"),
        }
    }

    /// Device RSSI transfer is strictly monotone: stronger physical signals
    /// never read weaker.
    #[test]
    fn device_transfer_monotone(r1 in -95.0f64..-20.0, gap in 0.1f64..30.0) {
        for device in [DeviceProfile::nexus_5x(), DeviceProfile::lg_g3(), DeviceProfile::galaxy_s2()] {
            prop_assert!(device.measure_rssi(r1 + gap) > device.measure_rssi(r1));
        }
    }
}
