//! Property-based tests for the sensor layer, on the in-repo
//! [`uniloc_rng::check`] harness.

use std::collections::BTreeMap;
use uniloc_env::ApId;
use uniloc_geom::GeoCoord;
use uniloc_rng::check::Checker;
use uniloc_rng::{require, require_eq, Rng};
use uniloc_sensors::nmea::{encode_gga, parse_gga};
use uniloc_sensors::{DeviceProfile, GpsFix, RssiCalibration, WifiScan};

const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/proptests.regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(128).regressions(REGRESSIONS)
}

fn gen_readings(rng: &mut Rng) -> BTreeMap<u32, f64> {
    let n = rng.gen_range(1..6usize);
    (0..n)
        .map(|_| (rng.gen_range(0..8u32), rng.gen_range(-90.0..-30.0)))
        .collect()
}

/// NMEA GGA encoding round-trips any valid fix to within the format's
/// 0.0001-arcminute resolution (~2e-6 degrees).
#[test]
fn gga_roundtrip() {
    checker("gga_roundtrip").run(
        |rng, scale| {
            (
                rng.gen_range(-89.9 * scale..89.9 * scale), // lat
                rng.gen_range(-179.9 * scale..179.9 * scale), // lon
                rng.gen_range(0.1..0.1 + 19.9 * scale),     // hdop
                rng.gen_range(4..14u32),                    // sats
                rng.gen_range(0.0..86_400.0 * scale),       // t
            )
        },
        |&(lat, lon, hdop, sats, t)| {
            let fix = GpsFix {
                coordinate: GeoCoord::new(lat, lon).unwrap(),
                hdop,
                satellites: sats,
            };
            let sentence = encode_gga(&fix, t);
            let back = parse_gga(&sentence).unwrap();
            require!((back.coordinate.lat - lat).abs() < 2e-6, "{sentence}");
            require!((back.coordinate.lon - lon).abs() < 2e-6, "{sentence}");
            require_eq!(back.satellites, sats);
            require!((back.hdop - hdop).abs() <= 0.05 + 1e-9, "{sentence}");
            Ok(())
        },
    );
}

/// Corrupting any payload character breaks the checksum (or produces a
/// parse error) — never a silently wrong fix.
#[test]
fn gga_detects_single_byte_corruption() {
    checker("gga_detects_single_byte_corruption").run(
        |rng, scale| {
            (
                rng.gen_range(-89.0 * scale..89.0 * scale),
                rng.gen_range(-179.0 * scale..179.0 * scale),
                rng.gen_range(1..20usize),
                // A replacement digit '0'..='9'.
                char::from(b'0' + rng.gen_range(0..10u32) as u8),
            )
        },
        |&(lat, lon, pos, replacement)| {
            let fix = GpsFix {
                coordinate: GeoCoord::new(lat, lon).unwrap(),
                hdop: 1.0,
                satellites: 8,
            };
            let sentence = encode_gga(&fix, 0.0);
            let mut bytes: Vec<char> = sentence.chars().collect();
            let idx = 7 + (pos % 12); // inside the time/lat fields
            if bytes[idx] != replacement && bytes[idx].is_ascii_digit() {
                bytes[idx] = replacement;
                let corrupted: String = bytes.into_iter().collect();
                require!(parse_gga(&corrupted).is_err(), "{corrupted}");
            }
            Ok(())
        },
    );
}

/// The RSSI calibration inverts any affine device transfer exactly when
/// learned from noise-free pairs.
#[test]
fn calibration_inverts_affine_transfer() {
    checker("calibration_inverts_affine_transfer").run(
        |rng, scale| {
            (
                1.0 + (rng.gen_range(0.8..1.2) - 1.0) * scale, // alpha
                rng.gen_range(-10.0 * scale..10.0 * scale),    // delta
            )
        },
        |&(alpha, delta)| {
            let pairs: Vec<(f64, f64)> = (0..24)
                .map(|i| {
                    let truth = -35.0 - i as f64 * 2.3;
                    (alpha * truth + delta, truth)
                })
                .collect();
            let cal = RssiCalibration::learn(&pairs).unwrap();
            for truth in [-40.0, -63.7, -88.0] {
                let recovered = cal.apply(alpha * truth + delta);
                require!((recovered - truth).abs() < 1e-6);
            }
            Ok(())
        },
    );
}

/// Scan distance is a semi-metric on common-AP scans: symmetric,
/// non-negative, zero on identity.
#[test]
fn scan_distance_semimetric() {
    checker("scan_distance_semimetric").run(
        |rng, _scale| (gen_readings(rng), gen_readings(rng)),
        |(a, b)| {
            let sa = WifiScan {
                readings: a.iter().map(|(&i, &r)| (ApId(i), r)).collect(),
            };
            let sb = WifiScan {
                readings: b.iter().map(|(&i, &r)| (ApId(i), r)).collect(),
            };
            require_eq!(sa.distance(&sa, 12.0), Some(0.0));
            match (sa.distance(&sb, 12.0), sb.distance(&sa, 12.0)) {
                (Some(x), Some(y)) => {
                    require!((x - y).abs() < 1e-12, "asymmetric: {x} vs {y}");
                    require!(x >= 0.0);
                }
                (None, None) => {}
                other => require!(false, "asymmetric availability {other:?}"),
            }
            Ok(())
        },
    );
}

/// Device RSSI transfer is strictly monotone: stronger physical signals
/// never read weaker.
#[test]
fn device_transfer_monotone() {
    checker("device_transfer_monotone").run(
        |rng, scale| {
            (
                rng.gen_range(-95.0..-20.0),
                rng.gen_range(0.1..0.1 + 29.9 * scale),
            )
        },
        |&(r1, gap)| {
            for device in [
                DeviceProfile::nexus_5x(),
                DeviceProfile::lg_g3(),
                DeviceProfile::galaxy_s2(),
            ] {
                require!(device.measure_rssi(r1 + gap) > device.measure_rssi(r1));
            }
            Ok(())
        },
    );
}
