//! Phone device profiles and RSSI heterogeneity.
//!
//! "Two devices may have different RSSI measurements from the same wireless
//! signal, due to hardware heterogeneity. [...] We transfer their RSSI
//! readings of device A and B by an online-learned offset:
//! `RSSI_A = alpha * RSSI_B + delta`, where `alpha` is close to 1."
//! (paper, Section III-B)
//!
//! The reference device is the Google Nexus 5X (used for fingerprinting and
//! error-model training); the LG G3 plays the "different device" in
//! Table III and Fig. 8d; the Samsung Galaxy S2 is the power-measurement
//! phone of Table IV.


/// Phone models used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DeviceModel {
    /// Google Nexus 5X (Qualcomm QCA6174a combo SoC) — the reference.
    Nexus5X,
    /// LG G3 (Broadcom BCM4339 combo chip) — the heterogeneous device.
    LgG3,
    /// Samsung Galaxy S2 i9100 — the power-measurement device.
    GalaxyS2,
}

impl std::fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceModel::Nexus5X => "Google Nexus 5X",
            DeviceModel::LgG3 => "LG G3",
            DeviceModel::GalaxyS2 => "Samsung Galaxy S2",
        };
        f.write_str(s)
    }
}

/// A device's measurement personality.
///
/// `rssi_alpha` / `rssi_delta` express how this device's RSSI relates to the
/// physical (reference) signal strength:
/// `measured = rssi_alpha * truth + rssi_delta`.
///
/// # Examples
///
/// ```
/// use uniloc_sensors::DeviceProfile;
///
/// let nexus = DeviceProfile::nexus_5x();
/// let g3 = DeviceProfile::lg_g3();
/// // The reference device reports the physical value.
/// assert_eq!(nexus.measure_rssi(-60.0), -60.0);
/// // The G3 reads a few dB differently.
/// assert!((g3.measure_rssi(-60.0) - (-60.0)).abs() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Which phone this is.
    pub model: DeviceModel,
    /// Multiplicative RSSI factor (close to 1).
    pub rssi_alpha: f64,
    /// Additive RSSI offset in dB.
    pub rssi_delta: f64,
}

impl DeviceProfile {
    /// The reference device (fingerprints and error models are collected
    /// with it).
    pub fn nexus_5x() -> Self {
        DeviceProfile { model: DeviceModel::Nexus5X, rssi_alpha: 1.0, rssi_delta: 0.0 }
    }

    /// The heterogeneous device of Table III / Fig. 8d.
    pub fn lg_g3() -> Self {
        DeviceProfile { model: DeviceModel::LgG3, rssi_alpha: 0.96, rssi_delta: -5.5 }
    }

    /// The power-measurement device of Table IV.
    pub fn galaxy_s2() -> Self {
        DeviceProfile { model: DeviceModel::GalaxyS2, rssi_alpha: 0.94, rssi_delta: -7.0 }
    }

    /// Applies the device's RSSI transfer function to a physical RSS value
    /// (dBm).
    pub fn measure_rssi(&self, truth_dbm: f64) -> f64 {
        self.rssi_alpha * truth_dbm + self.rssi_delta
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::nexus_5x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_device_is_identity() {
        let d = DeviceProfile::nexus_5x();
        for rss in [-30.0, -60.0, -90.0] {
            assert_eq!(d.measure_rssi(rss), rss);
        }
    }

    #[test]
    fn heterogeneous_devices_differ_consistently() {
        let g3 = DeviceProfile::lg_g3();
        // alpha close to 1, per the paper.
        assert!((g3.rssi_alpha - 1.0).abs() < 0.1);
        // Offset is several dB and affine (recoverable by calibration).
        let a = g3.measure_rssi(-50.0);
        let b = g3.measure_rssi(-80.0);
        assert!((a - b) > 25.0 && (a - b) < 35.0);
    }

    #[test]
    fn default_is_reference() {
        assert_eq!(DeviceProfile::default(), DeviceProfile::nexus_5x());
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceModel::Nexus5X.to_string(), "Google Nexus 5X");
        assert_eq!(DeviceModel::GalaxyS2.to_string(), "Samsung Galaxy S2");
    }
}
