//! Online RSSI offset calibration across heterogeneous devices.
//!
//! The fingerprint database is collected with one phone; a user with a
//! different phone sees shifted RSSIs. The paper follows [38]: learn an
//! affine transfer `rssi_ref = alpha * rssi_dev + delta` online from paired
//! observations (the device's reading vs. the best-matching fingerprint
//! reading) and apply it before matching. Fig. 8d shows this recovering most
//! of the heterogeneity-induced error (1.9x at the 90th percentile).


/// An affine RSSI transfer function between a device and the reference
/// device.
///
/// # Examples
///
/// ```
/// use uniloc_sensors::RssiCalibration;
///
/// // Pairs of (device reading, reference reading) with a -5 dB offset.
/// let pairs: Vec<(f64, f64)> = (0..20)
///     .map(|i| {
///         let r = -40.0 - i as f64 * 2.0;
///         (r - 5.0, r)
///     })
///     .collect();
/// let cal = RssiCalibration::learn(&pairs).unwrap();
/// assert!((cal.apply(-65.0) - (-60.0)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssiCalibration {
    /// Multiplicative term (close to 1).
    pub alpha: f64,
    /// Additive term in dB.
    pub delta: f64,
}

impl RssiCalibration {
    /// The identity calibration (same device as the reference).
    pub fn identity() -> Self {
        RssiCalibration { alpha: 1.0, delta: 0.0 }
    }

    /// Learns `alpha` and `delta` by least squares from
    /// `(device_reading, reference_reading)` pairs.
    ///
    /// Returns `None` with fewer than two pairs or when all device readings
    /// are identical (the slope is then unidentifiable).
    pub fn learn(pairs: &[(f64, f64)]) -> Option<Self> {
        if pairs.len() < 2 {
            return None;
        }
        let n = pairs.len() as f64;
        let sx: f64 = pairs.iter().map(|p| p.0).sum();
        let sy: f64 = pairs.iter().map(|p| p.1).sum();
        let sxx: f64 = pairs.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pairs.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-9 {
            return None;
        }
        let alpha = (n * sxy - sx * sy) / denom;
        let delta = (sy - alpha * sx) / n;
        Some(RssiCalibration { alpha, delta })
    }

    /// Maps a device reading into the reference-device RSSI space.
    pub fn apply(&self, device_rssi: f64) -> f64 {
        self.alpha * device_rssi + self.delta
    }
}

impl Default for RssiCalibration {
    fn default() -> Self {
        RssiCalibration::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;

    #[test]
    fn identity_is_noop() {
        let c = RssiCalibration::identity();
        assert_eq!(c.apply(-70.0), -70.0);
    }

    #[test]
    fn learns_exact_affine_map() {
        // Simulate the LG G3's transfer and invert it.
        let g3 = DeviceProfile::lg_g3();
        let pairs: Vec<(f64, f64)> =
            (0..30).map(|i| {
                let truth = -35.0 - i as f64 * 1.7;
                (g3.measure_rssi(truth), truth)
            }).collect();
        let cal = RssiCalibration::learn(&pairs).unwrap();
        for truth in [-40.0, -60.0, -85.0] {
            let recovered = cal.apply(g3.measure_rssi(truth));
            assert!((recovered - truth).abs() < 1e-9, "{recovered} vs {truth}");
        }
    }

    #[test]
    fn learns_under_noise() {
        let pairs: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let truth = -30.0 - (i % 60) as f64;
                let jitter = if i % 2 == 0 { 0.8 } else { -0.8 };
                (0.95 * truth - 6.0 + jitter, truth)
            })
            .collect();
        let cal = RssiCalibration::learn(&pairs).unwrap();
        // Inverse of (0.95, -6): alpha ~ 1.0526, delta ~ 6.3158.
        assert!((cal.alpha - 1.0 / 0.95).abs() < 0.01, "alpha {}", cal.alpha);
        assert!((cal.delta - 6.0 / 0.95).abs() < 0.3, "delta {}", cal.delta);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(RssiCalibration::learn(&[]).is_none());
        assert!(RssiCalibration::learn(&[(-50.0, -50.0)]).is_none());
        // Constant device readings: slope unidentifiable.
        assert!(RssiCalibration::learn(&[(-50.0, -48.0), (-50.0, -52.0)]).is_none());
    }
}
