//! The [`SensorHub`]: samples a ground-truth walk into the per-epoch
//! [`SensorFrame`]s that localization schemes consume.
//!
//! Schemes in UniLoc are black boxes over sensor data ("we treat all
//! localization schemes as black boxes and execute them on smartphones
//! independently"): every 0.5 s epoch they receive the same frame of WiFi /
//! cellular / GPS / IMU / light measurements. The hub is where device
//! imperfections enter: RSSI heterogeneity, GPS fix error (the paper's
//! measured `N(13.5 m, 9.4 m)` outdoors), and IMU heading drift whose rate
//! grows with the local magnetic disturbance.

use crate::device::DeviceProfile;
use crate::scans::{CellScan, GpsFix, WifiScan};
use uniloc_rng::Rng;
use uniloc_env::{Trajectory, World};
use uniloc_geom::{LandmarkKind, Point, Vector2};

/// One IMU-derived step, as the phone's PDR front-end reports it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMeasurement {
    /// Completion time (s since walk start).
    pub t: f64,
    /// Step duration (s).
    pub duration: f64,
    /// Estimated step length (m) after gait personalisation.
    pub length_est: f64,
    /// Estimated compass heading of the step (radians, 0 = north).
    pub heading_est: f64,
}

/// A landmark the phone's sensors recognized this epoch: a sharp turn seen
/// by the gyroscope, a door or WiFi/magnetic signature matched against the
/// landmark database. The position is the landmark's *known map position*
/// (how UnLoc-style calibration works), not the user's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LandmarkObservation {
    /// What kind of landmark fired.
    pub kind: LandmarkKind,
    /// The landmark's known position on the map.
    pub position: Point,
}

/// All sensor data gathered in one localization epoch.
///
/// `true_position` is carried for evaluation (computing localization error
/// against ground truth, training error models) — schemes must not read it
/// at inference time.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorFrame {
    /// Epoch time (s since walk start).
    pub t: f64,
    /// Ground-truth position (evaluation only).
    pub true_position: Point,
    /// WiFi scan (`None` when the radio is disabled).
    pub wifi: Option<WifiScan>,
    /// Cellular scan (`None` when the radio is disabled).
    pub cell: Option<CellScan>,
    /// GPS fix (`None` indoors / too few satellites / receiver disabled).
    pub gps: Option<GpsFix>,
    /// Steps completed since the previous epoch.
    pub steps: Vec<StepMeasurement>,
    /// Landmark recognized this epoch, if any.
    pub landmark: Option<LandmarkObservation>,
    /// Ambient light (lux) — IODetector input.
    pub light_lux: f64,
    /// Magnetometer disturbance proxy in `[0, 1]` — IODetector input.
    pub magnetic_variance: f64,
}

/// Samples sensor measurements for a device moving through a world.
///
/// # Examples
///
/// ```
/// use uniloc_env::{campus, GaitProfile, Walker};
/// use uniloc_sensors::{DeviceProfile, SensorHub};
///
/// let scenario = campus::daily_path(1);
/// let walk = Walker::new(GaitProfile::average(), uniloc_rng::Rng::seed_from_u64(2))
///     .walk(&scenario.route);
/// let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 3);
/// let frames = hub.sample_walk(&walk, 0.5);
/// // Every completed step appears in exactly one frame.
/// let steps: usize = frames.iter().map(|f| f.steps.len()).sum();
/// assert_eq!(steps, walk.len());
/// ```
#[derive(Debug)]
pub struct SensorHub<'w> {
    world: &'w World,
    device: DeviceProfile,
    rng: Rng,
    heading_bias: f64,
    /// Persistent per-walk step-length scale error (gait personalisation
    /// residual).
    step_scale: f64,
    last_landmark: Option<Point>,
    wifi_enabled: bool,
    cell_enabled: bool,
    gps_enabled: bool,
}

impl<'w> SensorHub<'w> {
    /// Creates a hub for `device` in `world`, with deterministic noise from
    /// `seed`.
    pub fn new(world: &'w World, device: DeviceProfile, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        SensorHub {
            world,
            device,
            rng,
            heading_bias: 0.0,
            step_scale: 1.0 + 0.08 * g,
            last_landmark: None,
            wifi_enabled: true,
            cell_enabled: true,
            gps_enabled: true,
        }
    }

    /// The device being simulated.
    pub fn device(&self) -> DeviceProfile {
        self.device
    }

    /// Enables/disables the WiFi radio (failure injection).
    pub fn set_wifi_enabled(&mut self, on: bool) {
        self.wifi_enabled = on;
    }

    /// Enables/disables the cellular radio (failure injection).
    pub fn set_cell_enabled(&mut self, on: bool) {
        self.cell_enabled = on;
    }

    /// Enables/disables the GPS receiver (energy policy / failure
    /// injection).
    pub fn set_gps_enabled(&mut self, on: bool) {
        self.gps_enabled = on;
    }

    /// Performs one WiFi scan at `p` through the device's RSSI transfer.
    pub fn scan_wifi(&mut self, p: Point) -> WifiScan {
        let readings = self
            .world
            .wifi_observation(p, &mut self.rng)
            .into_iter()
            .map(|(id, rss)| (id, self.device.measure_rssi(rss)))
            .collect();
        WifiScan { readings }
    }

    /// Performs one cellular scan at `p`.
    pub fn scan_cell(&mut self, p: Point) -> CellScan {
        let readings = self
            .world
            .cell_observation(p, &mut self.rng)
            .into_iter()
            .map(|(id, rss)| (id, self.device.measure_rssi(rss)))
            .collect();
        CellScan { readings }
    }

    /// Attempts a GPS fix at `p`. Returns `None` with fewer than 4 visible
    /// satellites.
    ///
    /// The fix error magnitude follows the paper's outdoor measurement
    /// `|N(13.5 m, 9.4 m)|`, inflated when fewer satellites are visible
    /// (semi-open corridors, car parks).
    pub fn gps_fix(&mut self, p: Point) -> Option<GpsFix> {
        let sats = self.world.visible_satellites(p, &mut self.rng);
        if sats < 4 {
            return None;
        }
        let hdop = (0.4 + 5.5 / (sats as f64 - 3.0) + 0.15 * self.gauss().abs()).min(20.0);
        let degradation = (10.5 / sats as f64).max(1.0).powf(1.2);
        let magnitude = (13.5 + 9.4 * self.gauss()).abs() * degradation;
        let angle = self.rng.gen_range(0.0..(2.0 * std::f64::consts::PI));
        let reported = p + Vector2::from_heading(angle, magnitude);
        Some(GpsFix {
            coordinate: self.world.geo_frame().to_geo(reported),
            hdop,
            satellites: sats,
        })
    }

    /// Reads the ambient light sensor at `p`.
    pub fn light(&mut self, p: Point) -> f64 {
        self.world.ambient_light(p, &mut self.rng)
    }

    /// Reads the magnetometer disturbance proxy at `p`.
    pub fn magnetic_variance(&mut self, p: Point) -> f64 {
        (self.world.magnetic_disturbance(p) + 0.05 * self.gauss()).clamp(0.0, 1.0)
    }

    /// Corrupts one true step into an IMU [`StepMeasurement`], advancing the
    /// heading-drift state.
    pub fn measure_step(&mut self, step: &uniloc_env::StepEvent) -> StepMeasurement {
        let mag = self.world.magnetic_disturbance(step.position);
        // Heading bias: AR(1) random walk whose innovation grows with the
        // magnetic disturbance (magnetometer corrections are weaker where
        // the field is disturbed). The slow retention makes drift persist
        // over tens of meters — the error-accumulation behaviour the
        // paper's beta_1 (distance from last landmark) feature captures.
        let rate = 0.025 + 0.020 * mag;
        self.heading_bias = self.heading_bias * 0.97 + rate * self.gauss();
        let tremble = 0.03 + 0.02 * mag;
        let heading_est = step.heading + self.heading_bias + tremble * self.gauss();
        // Persistent per-walk gait-scale error plus per-step noise: the
        // correlated part produces along-track drift that only landmark
        // calibration can remove.
        let length_est = step.step_length * self.step_scale * (1.0 + 0.03 * self.gauss());
        StepMeasurement { t: step.t, duration: step.duration, length_est, heading_est }
    }

    /// Checks for a landmark recognition at the walker's physical position.
    /// Fires once per pass (with an 88% recognition rate), not continuously
    /// while inside the detection radius.
    fn observe_landmark(&mut self, p: Point) -> Option<LandmarkObservation> {
        match self.world.floorplan().detected_landmark(p) {
            Some(l) => {
                let revisit = self
                    .last_landmark
                    .is_some_and(|q| q.distance(l.position) < 1e-6);
                self.last_landmark = Some(l.position);
                if !revisit && self.rng.gen_bool(0.88) {
                    Some(LandmarkObservation { kind: l.kind, position: l.position })
                } else {
                    None
                }
            }
            None => {
                self.last_landmark = None;
                None
            }
        }
    }

    /// Samples a whole walk into frames every `interval` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval <= 0`.
    pub fn sample_walk(&mut self, walk: &Trajectory, interval: f64) -> Vec<SensorFrame> {
        assert!(interval > 0.0, "sampling interval must be positive");
        let duration = walk.duration();
        let mut frames = Vec::new();
        let mut step_idx = 0usize;
        let steps = walk.steps();
        let mut t = interval;
        while t <= duration + interval {
            let epoch_t = t.min(duration);
            let p = walk.position_at(epoch_t);
            let mut epoch_steps = Vec::new();
            while step_idx < steps.len() && steps[step_idx].t <= epoch_t {
                epoch_steps.push(self.measure_step(&steps[step_idx]));
                step_idx += 1;
            }
            frames.push(SensorFrame {
                t: epoch_t,
                true_position: p,
                wifi: self.wifi_enabled.then(|| self.scan_wifi(p)),
                cell: self.cell_enabled.then(|| self.scan_cell(p)),
                gps: if self.gps_enabled { self.gps_fix(p) } else { None },
                steps: epoch_steps,
                landmark: self.observe_landmark(p),
                light_lux: self.light(p),
                magnetic_variance: self.magnetic_variance(p),
            });
            if epoch_t >= duration {
                break;
            }
            t += interval;
        }
        frames
    }

    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_env::{campus, GaitProfile, Walker};

    fn path_frames(seed: u64) -> (campus::Scenario, Trajectory, Vec<SensorFrame>) {
        let scenario = campus::daily_path(seed);
        let mut walker =
            Walker::new(GaitProfile::average(), Rng::seed_from_u64(seed + 1));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed + 2);
        let frames = hub.sample_walk(&walk, 0.5);
        (scenario, walk, frames)
    }

    #[test]
    fn frames_cover_walk_and_steps() {
        let (_, walk, frames) = path_frames(1);
        assert!(!frames.is_empty());
        let total_steps: usize = frames.iter().map(|f| f.steps.len()).sum();
        assert_eq!(total_steps, walk.len());
        // Epoch times increase and end at walk duration.
        for w in frames.windows(2) {
            assert!(w[1].t > w[0].t);
        }
        assert!((frames.last().unwrap().t - walk.duration()).abs() < 1e-9);
    }

    #[test]
    fn gps_available_outdoors_only() {
        let (scenario, _, frames) = path_frames(2);
        let mut indoor_fixes = 0usize;
        let mut outdoor_fixes = 0usize;
        let mut outdoor_frames = 0usize;
        let mut indoor_frames = 0usize;
        for f in &frames {
            if scenario.world.is_indoor(f.true_position) {
                indoor_frames += 1;
                if f.gps.is_some_and(|g| g.is_reliable()) {
                    indoor_fixes += 1;
                }
            } else {
                outdoor_frames += 1;
                if f.gps.is_some_and(|g| g.is_reliable()) {
                    outdoor_fixes += 1;
                }
            }
        }
        assert!(outdoor_fixes as f64 / outdoor_frames as f64 > 0.9, "outdoors GPS must work");
        assert!(
            (indoor_fixes as f64 / indoor_frames as f64) < 0.1,
            "reliable indoor fixes should be rare: {indoor_fixes}/{indoor_frames}"
        );
    }

    #[test]
    fn gps_error_matches_paper_distribution() {
        let scenario = campus::daily_path(3);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 5);
        let p = scenario.route.point_at(300.0); // open space
        let mut errors = Vec::new();
        for _ in 0..400 {
            if let Some(fix) = hub.gps_fix(p) {
                let reported = scenario.world.geo_frame().to_local(fix.coordinate);
                errors.push(reported.distance(p));
            }
        }
        assert!(errors.len() > 350);
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        // |N(13.5, 9.4)| has mean ~13.9.
        assert!((mean - 13.9).abs() < 2.5, "GPS mean error {mean}");
    }

    #[test]
    fn heading_bias_accumulates_but_stays_bounded() {
        let (_, walk, _) = path_frames(4);
        let scenario = campus::daily_path(4);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 6);
        let mut max_err: f64 = 0.0;
        for s in walk.steps() {
            let m = hub.measure_step(s);
            let err = (m.heading_est - s.heading).abs();
            max_err = max_err.max(err);
        }
        assert!(max_err > 0.005, "some drift must appear");
        assert!(max_err < 0.6, "drift must stay physical, got {max_err}");
    }

    #[test]
    fn device_offset_shifts_scans() {
        let scenario = campus::daily_path(5);
        let p = scenario.route.point_at(25.0);
        let mut nexus = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 7);
        let mut g3 = SensorHub::new(&scenario.world, DeviceProfile::lg_g3(), 7);
        let a = nexus.scan_wifi(p);
        let b = g3.scan_wifi(p);
        // Same seed, same truth: the difference is exactly the transfer.
        for ((id_a, ra), (id_b, rb)) in a.readings.iter().zip(&b.readings) {
            assert_eq!(id_a, id_b);
            let expected = DeviceProfile::lg_g3().measure_rssi(
                (ra - DeviceProfile::nexus_5x().rssi_delta) / DeviceProfile::nexus_5x().rssi_alpha,
            );
            assert!((rb - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn radios_can_be_disabled() {
        let scenario = campus::daily_path(6);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(1));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 8);
        hub.set_wifi_enabled(false);
        hub.set_gps_enabled(false);
        hub.set_cell_enabled(false);
        let frames = hub.sample_walk(&walk, 0.5);
        assert!(frames.iter().all(|f| f.wifi.is_none() && f.cell.is_none() && f.gps.is_none()));
    }

    #[test]
    fn light_and_magnetics_reflect_environment() {
        let (scenario, _, frames) = path_frames(7);
        let mut indoor_light = Vec::new();
        let mut outdoor_light = Vec::new();
        for f in &frames {
            if scenario.world.is_indoor(f.true_position) {
                indoor_light.push(f.light_lux);
            } else {
                outdoor_light.push(f.light_lux);
            }
            assert!((0.0..=1.0).contains(&f.magnetic_variance));
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&outdoor_light) > 5.0 * avg(&indoor_light));
    }

    #[test]
    fn landmarks_observed_once_per_pass() {
        let scenario = campus::daily_path(9);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(10));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 11);
        let frames = hub.sample_walk(&walk, 0.5);
        let observed: Vec<_> = frames.iter().filter_map(|f| f.landmark).collect();
        // The daily path has several landmarks (turns at 4 corners, doors).
        assert!(observed.len() >= 3, "only {} landmark observations", observed.len());
        // No two consecutive frames observe the same landmark position.
        for w in frames.windows(2) {
            if let (Some(a), Some(b)) = (w[0].landmark, w[1].landmark) {
                assert!(
                    a.position.distance(b.position) > 1e-6,
                    "same landmark fired twice in a row"
                );
            }
        }
        // Observed positions are real landmarks from the plan.
        for obs in &observed {
            assert!(
                scenario
                    .world
                    .floorplan()
                    .landmarks()
                    .iter()
                    .any(|l| l.position.distance(obs.position) < 1e-9),
                "observation does not match any planned landmark"
            );
        }
    }

    #[test]
    fn sample_walk_is_deterministic() {
        let scenario = campus::daily_path(12);
        let mut walker1 = Walker::new(GaitProfile::average(), Rng::seed_from_u64(13));
        let walk1 = walker1.walk(&scenario.route);
        let mut walker2 = Walker::new(GaitProfile::average(), Rng::seed_from_u64(13));
        let walk2 = walker2.walk(&scenario.route);
        let mut hub1 = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 14);
        let mut hub2 = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 14);
        let f1 = hub1.sample_walk(&walk1, 0.5);
        let f2 = hub2.sample_walk(&walk2, 0.5);
        assert_eq!(f1, f2, "same seeds must reproduce identical frames");
    }

    #[test]
    #[should_panic(expected = "sampling interval must be positive")]
    fn zero_interval_panics() {
        let scenario = campus::daily_path(8);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(1));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 9);
        hub.sample_walk(&walk, 0.0);
    }
}
