//! Accelerometer trace synthesis and step detection.
//!
//! The paper's PDR substrate infers steps from 50 Hz accelerometer traces
//! and adds a compensation mechanism: "The normal period of one human
//! walking step is from 0.4 s to 0.7 s. If the time duration of one step is
//! less than 0.4 s or larger than 0.7 s, the system will infer a false
//! positive or false negative step, and delete or add one step." This module
//! reproduces that pipeline: [`synthesize_accel_trace`] renders a walk into
//! an accelerometer-magnitude trace (with hand-tremble spikes),
//! [`detect_steps`] finds step peaks and applies the compensation.

use uniloc_rng::Rng;
use uniloc_env::Trajectory;

/// Sampling rate of the synthetic accelerometer (Hz) — phones report ~50 Hz.
pub const SAMPLE_RATE_HZ: f64 = 50.0;

/// Gravity magnitude baseline (m/s^2).
const GRAVITY: f64 = 9.81;

/// One accelerometer magnitude sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelSample {
    /// Time since walk start (s).
    pub t: f64,
    /// Acceleration magnitude (m/s^2).
    pub magnitude: f64,
}

/// A detected (and compensated) step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedStep {
    /// Detection time (s).
    pub t: f64,
    /// Period since the previous detected step (s).
    pub period: f64,
    /// Whether the compensation mechanism synthesized or adjusted this step.
    pub compensated: bool,
}

/// Renders a ground-truth walk into a 50 Hz accelerometer-magnitude trace.
///
/// Each true step contributes a sinusoidal bounce whose period matches the
/// step duration; `tremble` (0 = steady hand, 1 = very shaky) injects
/// spurious spikes that stress the detector the way hand tremble does in the
/// paper.
pub fn synthesize_accel_trace(
    walk: &Trajectory,
    tremble: f64,
    rng: &mut Rng,
) -> Vec<AccelSample> {
    let duration = walk.duration();
    let n = (duration * SAMPLE_RATE_HZ).ceil() as usize;
    let mut trace = Vec::with_capacity(n);
    let steps = walk.steps();
    let mut step_idx = 0usize;
    for i in 0..n {
        let t = i as f64 / SAMPLE_RATE_HZ;
        while step_idx < steps.len() && steps[step_idx].t < t {
            step_idx += 1;
        }
        // Phase within the current step.
        let bounce = if step_idx < steps.len() {
            let s = &steps[step_idx];
            let start = s.t - s.duration;
            let phase = ((t - start) / s.duration).clamp(0.0, 1.0);
            // One full bounce per step, peak mid-stance.
            2.2 * (std::f64::consts::PI * phase).sin()
        } else {
            0.0
        };
        let noise = 0.25 * gauss(rng);
        // Tremble: occasional sharp spikes.
        let spike = if rng.gen_bool((0.01 * tremble).clamp(0.0, 1.0)) {
            rng.gen_range(1.5..3.0)
        } else {
            0.0
        };
        trace.push(AccelSample { t, magnitude: GRAVITY + bounce + noise + spike });
    }
    trace
}

/// Detects steps in an accelerometer-magnitude trace by thresholded peak
/// picking, then applies the paper's step-period compensation:
///
/// * peaks closer than 0.4 s to the previous step are treated as false
///   positives and dropped;
/// * gaps longer than 0.7 s (while walking) insert one compensated step.
pub fn detect_steps(trace: &[AccelSample]) -> Vec<DetectedStep> {
    const THRESHOLD: f64 = GRAVITY + 1.1;
    const MIN_PERIOD: f64 = 0.4;
    const MAX_PERIOD: f64 = 0.7;

    // Raw peak detection: the sample must dominate a +/-0.2 s window, so at
    // most one peak fires per plausible step.
    let half = (0.2 * SAMPLE_RATE_HZ) as usize;
    let mut raw: Vec<f64> = Vec::new();
    for i in 0..trace.len() {
        if trace[i].magnitude <= THRESHOLD {
            continue;
        }
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(trace.len());
        let is_peak = (lo..hi).all(|j| j == i || trace[j].magnitude < trace[i].magnitude);
        if is_peak {
            raw.push(trace[i].t);
        }
    }

    // Compensation pass.
    let mut steps: Vec<DetectedStep> = Vec::new();
    let mut last_t: Option<f64> = None;
    for t in raw {
        match last_t {
            None => {
                steps.push(DetectedStep { t, period: 0.55, compensated: false });
                last_t = Some(t);
            }
            Some(prev) => {
                let period = t - prev;
                if period < MIN_PERIOD {
                    // False positive (tremble spike): drop it.
                    continue;
                }
                if period > 2.0 * MAX_PERIOD {
                    // Missed at least one step: insert one compensated step
                    // midway, as the paper's mechanism adds a step.
                    let mid = prev + period / 2.0;
                    steps.push(DetectedStep {
                        t: mid,
                        period: mid - prev,
                        compensated: true,
                    });
                    steps.push(DetectedStep { t, period: t - mid, compensated: false });
                } else {
                    steps.push(DetectedStep { t, period, compensated: false });
                }
                last_t = Some(t);
            }
        }
    }
    steps
}

fn gauss(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_env::{GaitProfile, Walker};
    use uniloc_geom::{Point, Polyline};

    fn walk(len: f64, seed: u64) -> Trajectory {
        let route = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(len, 0.0)]).unwrap();
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(seed));
        walker.walk(&route)
    }

    #[test]
    fn trace_has_expected_rate_and_baseline() {
        let w = walk(30.0, 1);
        let mut rng = Rng::seed_from_u64(2);
        let trace = synthesize_accel_trace(&w, 0.0, &mut rng);
        let expected = (w.duration() * SAMPLE_RATE_HZ).ceil() as usize;
        assert_eq!(trace.len(), expected);
        let mean: f64 = trace.iter().map(|s| s.magnitude).sum::<f64>() / trace.len() as f64;
        // Gravity plus average positive bounce.
        assert!(mean > GRAVITY && mean < GRAVITY + 2.5, "mean {mean}");
    }

    #[test]
    fn step_count_accurate_without_tremble() {
        let w = walk(100.0, 3);
        let mut rng = Rng::seed_from_u64(4);
        let trace = synthesize_accel_trace(&w, 0.0, &mut rng);
        let detected = detect_steps(&trace);
        let true_n = w.len() as f64;
        let got = detected.len() as f64;
        assert!(
            (got - true_n).abs() / true_n < 0.05,
            "detected {got} vs true {true_n}"
        );
    }

    #[test]
    fn compensation_bounds_tremble_damage() {
        let w = walk(100.0, 5);
        let mut rng = Rng::seed_from_u64(6);
        let trace = synthesize_accel_trace(&w, 1.0, &mut rng);
        let detected = detect_steps(&trace);
        let true_n = w.len() as f64;
        let got = detected.len() as f64;
        // Heavy tremble still stays within ~12% after compensation.
        assert!(
            (got - true_n).abs() / true_n < 0.12,
            "detected {got} vs true {true_n} under tremble"
        );
    }

    #[test]
    fn detected_periods_mostly_in_band() {
        let w = walk(80.0, 7);
        let mut rng = Rng::seed_from_u64(8);
        let trace = synthesize_accel_trace(&w, 0.2, &mut rng);
        let steps = detect_steps(&trace);
        let in_band = steps
            .iter()
            .skip(1)
            .filter(|s| (0.35..=0.75).contains(&s.period))
            .count();
        assert!(in_band as f64 / (steps.len() - 1) as f64 > 0.9);
    }

    #[test]
    fn detection_times_increase() {
        let w = walk(50.0, 9);
        let mut rng = Rng::seed_from_u64(10);
        let trace = synthesize_accel_trace(&w, 0.5, &mut rng);
        let steps = detect_steps(&trace);
        for pair in steps.windows(2) {
            assert!(pair[1].t > pair[0].t);
        }
    }

    #[test]
    fn empty_trace_yields_no_steps() {
        assert!(detect_steps(&[]).is_empty());
    }
}
