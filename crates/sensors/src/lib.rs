//! Smartphone sensor simulation for the UniLoc reproduction.
//!
//! This crate turns the truth-level environment of `uniloc-env` into the
//! imperfect measurements a phone actually delivers:
//!
//! * [`device`] — phone models with the RSSI heterogeneity the paper
//!   measures between the Google Nexus 5X and LG G3
//!   (`rssi_A = alpha * rssi_B + delta`, Section III-B).
//! * [`scans`] — [`WifiScan`], [`CellScan`] and [`GpsFix`] (coordinate,
//!   HDOP, visible satellites — exactly what "the GPS module of current
//!   smartphones" reports).
//! * [`accel`] — 50 Hz accelerometer-trace synthesis, step detection, and
//!   the paper's 0.4–0.7 s step-period compensation mechanism.
//! * [`hub`] — the [`SensorHub`] samples a whole walk into per-epoch
//!   [`SensorFrame`]s, evolving IMU heading drift along the way.
//! * [`calibrate`] — online RSSI offset calibration between heterogeneous
//!   devices ("we transfer their RSSI readings [...] by an online-learned
//!   offset").
//!
//! # Examples
//!
//! ```
//! use uniloc_env::{campus, GaitProfile, Walker};
//! use uniloc_sensors::{DeviceProfile, SensorHub};
//!
//! let scenario = campus::daily_path(1);
//! let mut walker = Walker::new(
//!     GaitProfile::average(),
//!     uniloc_rng::Rng::seed_from_u64(2),
//! );
//! let walk = walker.walk(&scenario.route);
//! let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 3);
//! let frames = hub.sample_walk(&walk, 0.5);
//! assert!(!frames.is_empty());
//! // Early frames are in the office: WiFi audible, no usable GPS.
//! assert!(frames[10].wifi.as_ref().is_some_and(|w| !w.readings.is_empty()));
//! ```

pub mod accel;
pub mod calibrate;
pub mod device;
pub mod hub;
pub mod nmea;
pub mod scans;

pub use accel::{detect_steps, synthesize_accel_trace, AccelSample, DetectedStep};
pub use calibrate::RssiCalibration;
pub use device::{DeviceModel, DeviceProfile};
pub use hub::{LandmarkObservation, SensorFrame, SensorHub, StepMeasurement};
pub use scans::{merge_distance, CellScan, GpsFix, WifiScan};
