//! Scan result types: what one measurement epoch delivers per radio.

use uniloc_env::{ApId, TowerId};
use uniloc_geom::GeoCoord;

/// The RADAR fingerprint distance over any id-sorted `(id, RSSI)` reading
/// slices: Euclidean over common ids, a `missing_penalty_dbm` charge per
/// id audible in only one side, `None` when no id is shared. Generic over
/// the id type so WiFi APs, cell towers and the flat index slabs all run
/// the exact same merge (and therefore produce bit-identical distances).
pub fn merge_distance<K: Ord + Copy>(
    a: &[(K, f64)],
    b: &[(K, f64)],
    missing_penalty_dbm: f64,
) -> Option<f64> {
    let mut sum_sq = 0.0;
    let mut common = 0usize;
    let mut i = 0;
    let mut j = 0;
    let mut missing = 0usize;
    while i < a.len() && j < b.len() {
        let (ka, ra) = a[i];
        let (kb, rb) = b[j];
        match ka.cmp(&kb) {
            std::cmp::Ordering::Equal => {
                sum_sq += (ra - rb) * (ra - rb);
                common += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                missing += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                missing += 1;
                j += 1;
            }
        }
    }
    missing += a.len() - i + b.len() - j;
    if common == 0 {
        return None;
    }
    sum_sq += missing as f64 * missing_penalty_dbm * missing_penalty_dbm;
    Some((sum_sq / (common + missing) as f64).sqrt())
}

/// A WiFi scan: RSSI per audible access point, in dBm, as measured by the
/// scanning device (device offset already applied).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WifiScan {
    /// `(AP id, RSSI dBm)` pairs, in AP-id order.
    pub readings: Vec<(ApId, f64)>,
}

impl WifiScan {
    /// Number of audible APs.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether no AP was audible.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// RSSI for a particular AP, if audible.
    pub fn rssi(&self, id: ApId) -> Option<f64> {
        self.readings.iter().find(|(a, _)| *a == id).map(|(_, r)| *r)
    }

    /// Euclidean distance between two scans over their common APs, the
    /// core metric of RADAR-style fingerprinting. APs audible in only one
    /// scan contribute a penalty of `(missing_penalty_dbm)` each, so having
    /// disjoint AP sets costs more than sharing weak links.
    ///
    /// Returns `None` when the scans share no APs at all.
    pub fn distance(&self, other: &WifiScan, missing_penalty_dbm: f64) -> Option<f64> {
        merge_distance(&self.readings, &other.readings, missing_penalty_dbm)
    }
}

/// A cellular scan: RSSI per audible tower, in dBm.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellScan {
    /// `(tower id, RSSI dBm)` pairs, in tower-id order.
    pub readings: Vec<(TowerId, f64)>,
}

impl CellScan {
    /// Number of audible towers.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether no tower was audible.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// Same fingerprint distance as [`WifiScan::distance`]. `TowerId`
    /// orders exactly like its inner `u32` (as `ApId` does), so running
    /// the shared merge directly over tower readings is bit-identical to
    /// the former remap-through-`WifiScan` path — without allocating two
    /// temporary scans per comparison.
    pub fn distance(&self, other: &CellScan, missing_penalty_dbm: f64) -> Option<f64> {
        merge_distance(&self.readings, &other.readings, missing_penalty_dbm)
    }
}

/// A GPS fix as the phone's GPS module reports it: geographic coordinate,
/// HDOP and the number of visible satellites.
///
/// "A reliable location estimation requires that the number of visible
/// satellites is larger than 4 and HDOP is less than 6."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsFix {
    /// Reported coordinate (contains the positioning error).
    pub coordinate: GeoCoord,
    /// Horizontal dilution of precision.
    pub hdop: f64,
    /// Number of visible satellites.
    pub satellites: u32,
}

impl GpsFix {
    /// The paper's reliability gate: more than 4 satellites and HDOP < 6.
    pub fn is_reliable(&self) -> bool {
        self.satellites > 4 && self.hdop < 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(pairs: &[(u32, f64)]) -> WifiScan {
        WifiScan { readings: pairs.iter().map(|&(id, r)| (ApId(id), r)).collect() }
    }

    #[test]
    fn identical_scans_have_zero_distance() {
        let a = scan(&[(0, -50.0), (1, -60.0)]);
        assert_eq!(a.distance(&a, 15.0), Some(0.0));
    }

    #[test]
    fn distance_grows_with_rssi_gap() {
        let a = scan(&[(0, -50.0), (1, -60.0)]);
        let near = scan(&[(0, -52.0), (1, -61.0)]);
        let far = scan(&[(0, -70.0), (1, -80.0)]);
        let d_near = a.distance(&near, 15.0).unwrap();
        let d_far = a.distance(&far, 15.0).unwrap();
        assert!(d_near < d_far);
    }

    #[test]
    fn missing_aps_penalized() {
        let a = scan(&[(0, -50.0), (1, -60.0), (2, -70.0)]);
        let full = scan(&[(0, -50.0), (1, -60.0), (2, -70.0)]);
        let partial = scan(&[(0, -50.0)]);
        assert!(a.distance(&partial, 15.0).unwrap() > a.distance(&full, 15.0).unwrap());
    }

    #[test]
    fn disjoint_scans_have_no_distance() {
        let a = scan(&[(0, -50.0)]);
        let b = scan(&[(1, -50.0)]);
        assert_eq!(a.distance(&b, 15.0), None);
        assert_eq!(a.distance(&WifiScan::default(), 15.0), None);
    }

    #[test]
    fn rssi_lookup() {
        let a = scan(&[(3, -42.0)]);
        assert_eq!(a.rssi(ApId(3)), Some(-42.0));
        assert_eq!(a.rssi(ApId(4)), None);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn cell_scan_distance_delegates() {
        let a = CellScan { readings: vec![(TowerId(0), -80.0), (TowerId(1), -90.0)] };
        let b = CellScan { readings: vec![(TowerId(0), -82.0), (TowerId(1), -90.0)] };
        let d = a.distance(&b, 15.0).unwrap();
        assert!((d - (4.0f64 / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn gps_reliability_gate() {
        let mk = |sats, hdop| GpsFix {
            coordinate: GeoCoord::new(1.0, 103.0).unwrap(),
            hdop,
            satellites: sats,
        };
        assert!(mk(10, 0.9).is_reliable());
        assert!(!mk(4, 0.9).is_reliable(), "needs MORE than 4 sats");
        assert!(!mk(10, 6.0).is_reliable());
        assert!(mk(5, 5.9).is_reliable());
    }
}

uniloc_stats::impl_json_struct!(WifiScan { readings });
uniloc_stats::impl_json_struct!(CellScan { readings });
uniloc_stats::impl_json_struct!(GpsFix { coordinate, hdop, satellites });
