//! NMEA-0183 GGA sentence framing for GPS fixes.
//!
//! Phone GPS modules speak NMEA; "the results provided by the GPS module of
//! current smartphones include the user's coordinate, Horizontal Dilution
//! of Precision (HDOP) and the number of visible satellites" — exactly the
//! fields of a `$GPGGA` sentence. This module encodes a [`GpsFix`] into a
//! checksummed GGA sentence and parses one back, so the simulated receiver
//! can be driven through the same wire format a real one uses.

use crate::scans::GpsFix;
use uniloc_geom::GeoCoord;

/// Errors from NMEA parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NmeaError {
    /// The sentence does not start with `$` or lacks a `*` checksum.
    Framing,
    /// The checksum does not match the payload.
    Checksum,
    /// Not a GGA sentence.
    WrongSentence,
    /// A field is missing or malformed.
    Field(&'static str),
}

impl std::fmt::Display for NmeaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NmeaError::Framing => f.write_str("invalid NMEA framing"),
            NmeaError::Checksum => f.write_str("NMEA checksum mismatch"),
            NmeaError::WrongSentence => f.write_str("not a GGA sentence"),
            NmeaError::Field(which) => write!(f, "malformed GGA field: {which}"),
        }
    }
}

impl std::error::Error for NmeaError {}

/// XOR checksum over the payload between `$` and `*`.
fn checksum(payload: &str) -> u8 {
    payload.bytes().fold(0u8, |acc, b| acc ^ b)
}

/// Formats a latitude/longitude in NMEA `ddmm.mmmm` / `dddmm.mmmm` form.
fn to_dm(value: f64, lat: bool) -> (String, char) {
    let hemi = if lat {
        if value >= 0.0 { 'N' } else { 'S' }
    } else if value >= 0.0 {
        'E'
    } else {
        'W'
    };
    let v = value.abs();
    let degrees = v.floor();
    let minutes = (v - degrees) * 60.0;
    let text = if lat {
        format!("{:02}{:07.4}", degrees as u32, minutes)
    } else {
        format!("{:03}{:07.4}", degrees as u32, minutes)
    };
    (text, hemi)
}

fn from_dm(text: &str, hemi: &str, lat: bool) -> Result<f64, NmeaError> {
    let field = if lat { "latitude" } else { "longitude" };
    let deg_digits = if lat { 2 } else { 3 };
    if text.len() < deg_digits + 2 {
        return Err(NmeaError::Field(field));
    }
    let degrees: f64 = text[..deg_digits].parse().map_err(|_| NmeaError::Field(field))?;
    let minutes: f64 = text[deg_digits..].parse().map_err(|_| NmeaError::Field(field))?;
    if minutes >= 60.0 {
        return Err(NmeaError::Field(field));
    }
    let sign = match (lat, hemi) {
        (true, "N") | (false, "E") => 1.0,
        (true, "S") | (false, "W") => -1.0,
        _ => return Err(NmeaError::Field("hemisphere")),
    };
    Ok(sign * (degrees + minutes / 60.0))
}

/// Encodes a fix as a `$GPGGA` sentence. `time_s` is seconds since
/// midnight UTC (fractional seconds preserved to two digits).
///
/// # Examples
///
/// ```
/// use uniloc_sensors::nmea::{encode_gga, parse_gga};
/// use uniloc_sensors::GpsFix;
/// use uniloc_geom::GeoCoord;
///
/// let fix = GpsFix {
///     coordinate: GeoCoord::new(1.3483, 103.6831)?,
///     hdop: 0.9,
///     satellites: 11,
/// };
/// let sentence = encode_gga(&fix, 12.5 * 3600.0);
/// let back = parse_gga(&sentence)?;
/// assert_eq!(back.satellites, 11);
/// assert!((back.coordinate.lat - 1.3483).abs() < 1e-4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode_gga(fix: &GpsFix, time_s: f64) -> String {
    let t = time_s.rem_euclid(86_400.0);
    let hh = (t / 3600.0).floor() as u32;
    let mm = ((t % 3600.0) / 60.0).floor() as u32;
    let ss = t % 60.0;
    let (lat, ns) = to_dm(fix.coordinate.lat, true);
    let (lon, ew) = to_dm(fix.coordinate.lon, false);
    let quality = 1; // standard GPS fix
    let payload = format!(
        "GPGGA,{hh:02}{mm:02}{ss:05.2},{lat},{ns},{lon},{ew},{quality},{:02},{:.1},15.0,M,7.0,M,,",
        fix.satellites, fix.hdop
    );
    format!("${payload}*{:02X}", checksum(&payload))
}

/// Parses a `$GPGGA` sentence back into a [`GpsFix`].
///
/// # Errors
///
/// Returns [`NmeaError`] for framing, checksum, sentence-type or field
/// problems.
pub fn parse_gga(sentence: &str) -> Result<GpsFix, NmeaError> {
    let body = sentence.strip_prefix('$').ok_or(NmeaError::Framing)?;
    let (payload, cs_text) = body.rsplit_once('*').ok_or(NmeaError::Framing)?;
    let want = u8::from_str_radix(cs_text.trim(), 16).map_err(|_| NmeaError::Framing)?;
    if checksum(payload) != want {
        return Err(NmeaError::Checksum);
    }
    let fields: Vec<&str> = payload.split(',').collect();
    if fields.is_empty() || !fields[0].ends_with("GGA") {
        return Err(NmeaError::WrongSentence);
    }
    if fields.len() < 9 {
        return Err(NmeaError::Field("count"));
    }
    let lat = from_dm(fields[2], fields[3], true)?;
    let lon = from_dm(fields[4], fields[5], false)?;
    let satellites: u32 = fields[7].parse().map_err(|_| NmeaError::Field("satellites"))?;
    let hdop: f64 = fields[8].parse().map_err(|_| NmeaError::Field("hdop"))?;
    let coordinate = GeoCoord::new(lat, lon).map_err(|_| NmeaError::Field("coordinate"))?;
    Ok(GpsFix { coordinate, hdop, satellites })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(lat: f64, lon: f64, hdop: f64, sats: u32) -> GpsFix {
        GpsFix { coordinate: GeoCoord::new(lat, lon).unwrap(), hdop, satellites: sats }
    }

    #[test]
    fn roundtrip_preserves_fields() {
        for (lat, lon) in [(1.3483, 103.6831), (-33.8568, 151.2153), (51.5007, -0.1246)] {
            let f = fix(lat, lon, 1.2, 9);
            let s = encode_gga(&f, 3723.0);
            let back = parse_gga(&s).unwrap();
            assert!((back.coordinate.lat - lat).abs() < 2e-6, "{s}");
            assert!((back.coordinate.lon - lon).abs() < 2e-6, "{s}");
            assert_eq!(back.satellites, 9);
            assert!((back.hdop - 1.2).abs() < 1e-9);
        }
    }

    #[test]
    fn sentence_shape_is_nmea() {
        let s = encode_gga(&fix(1.3483, 103.6831, 0.9, 11), 45_296.5);
        assert!(s.starts_with("$GPGGA,123456.50,"), "{s}");
        assert!(s.contains(",N,"), "{s}");
        assert!(s.contains(",E,"), "{s}");
        assert!(s.contains('*'));
    }

    #[test]
    fn checksum_rejected_when_corrupted() {
        let s = encode_gga(&fix(1.0, 103.0, 1.0, 8), 0.0);
        let corrupted = s.replace(",08,", ",09,");
        assert_eq!(parse_gga(&corrupted).unwrap_err(), NmeaError::Checksum);
    }

    #[test]
    fn framing_errors() {
        assert_eq!(parse_gga("GPGGA,no,dollar").unwrap_err(), NmeaError::Framing);
        assert_eq!(parse_gga("$GPGGA,no,star").unwrap_err(), NmeaError::Framing);
        assert_eq!(parse_gga("$GPGGA,bad*ZZ").unwrap_err(), NmeaError::Framing);
    }

    #[test]
    fn wrong_sentence_detected() {
        let payload = "GPRMC,123456,A";
        let s = format!("${payload}*{:02X}", checksum(payload));
        assert_eq!(parse_gga(&s).unwrap_err(), NmeaError::WrongSentence);
    }

    #[test]
    fn malformed_fields_detected() {
        let payload = "GPGGA,000000.00,9x30.0,N,10341.0,E,1,08,1.0,0,M,0,M,,";
        let s = format!("${payload}*{:02X}", checksum(payload));
        assert_eq!(parse_gga(&s).unwrap_err(), NmeaError::Field("latitude"));
        let payload = "GPGGA,000000.00,0130.0,Q,10341.0,E,1,08,1.0,0,M,0,M,,";
        let s = format!("${payload}*{:02X}", checksum(payload));
        assert_eq!(parse_gga(&s).unwrap_err(), NmeaError::Field("hemisphere"));
    }

    #[test]
    fn southern_western_hemispheres() {
        let f = fix(-1.5, -103.25, 2.0, 6);
        let s = encode_gga(&f, 0.0);
        assert!(s.contains(",S,") && s.contains(",W,"), "{s}");
        let back = parse_gga(&s).unwrap();
        assert!(back.coordinate.lat < 0.0 && back.coordinate.lon < 0.0);
    }

    #[test]
    fn error_display() {
        assert_eq!(NmeaError::Checksum.to_string(), "NMEA checksum mismatch");
        assert_eq!(NmeaError::Field("hdop").to_string(), "malformed GGA field: hdop");
    }
}
